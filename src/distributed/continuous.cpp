#include "distributed/continuous.h"

#include "common/error.h"

namespace ustream {

ContinuousUnionMonitor::ContinuousUnionMonitor(std::size_t sites, std::uint64_t report_interval,
                                               const EstimatorParams& params)
    : params_(params),
      report_interval_(report_interval),
      since_report_(sites, 0),
      referee_snapshots_(sites),
      channel_(sites) {
  USTREAM_REQUIRE(sites >= 1, "need at least one site");
  USTREAM_REQUIRE(report_interval >= 1, "report interval must be >= 1");
  site_sketches_.reserve(sites);
  for (std::size_t i = 0; i < sites; ++i) site_sketches_.emplace_back(params);
}

void ContinuousUnionMonitor::observe(std::size_t site, std::uint64_t label) {
  site_sketches_.at(site).add(label);
  if (++since_report_[site] >= report_interval_) push(site);
}

void ContinuousUnionMonitor::push(std::size_t site) {
  since_report_[site] = 0;
  auto payload = site_sketches_[site].serialize();
  channel_.send(site, std::move(payload));
  // The referee consumes immediately in this in-process simulation.
  for (auto& bytes : channel_.drain()) {
    ++snapshots_;
    referee_snapshots_[site] = F0Estimator::deserialize(std::span<const std::uint8_t>(bytes));
  }
}

void ContinuousUnionMonitor::flush() {
  for (std::size_t i = 0; i < site_sketches_.size(); ++i) {
    if (since_report_[i] > 0 || !referee_snapshots_[i].has_value()) push(i);
  }
}

double ContinuousUnionMonitor::estimate() const {
  std::optional<F0Estimator> merged;
  for (const auto& snap : referee_snapshots_) {
    if (!snap) continue;
    if (!merged) {
      merged = *snap;
    } else {
      merged->merge(*snap);
    }
  }
  return merged ? merged->estimate() : 0.0;
}

}  // namespace ustream
