#include "distributed/sharding.h"

namespace ustream {

F0Estimator sketch_in_parallel(std::span<const Item> items, const EstimatorParams& params,
                               std::size_t threads) {
  return shard_and_merge<F0Estimator>(
      items, threads, [&params] { return F0Estimator(params); },
      [](F0Estimator& sketch, const Item& item) { sketch.add(item.label); });
}

}  // namespace ustream
