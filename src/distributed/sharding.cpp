#include "distributed/sharding.h"

namespace ustream {

F0Estimator sketch_in_parallel(std::span<const Item> items, const EstimatorParams& params,
                               std::size_t threads) {
  return shard_and_merge<F0Estimator>(
      items, threads, [&params] { return F0Estimator(params); },
      [](F0Estimator& sketch, std::span<const Item> chunk) {
        // Strip labels into a dense block, then batch-ingest: the sampler's
        // hash loop wants contiguous uint64s, not strided Item fields.
        constexpr std::size_t kBlock = 256;
        std::uint64_t labels[kBlock];
        for (std::size_t i = 0; i < chunk.size(); i += kBlock) {
          const std::size_t n = std::min(kBlock, chunk.size() - i);
          for (std::size_t j = 0; j < n; ++j) labels[j] = chunk[i + j].label;
          sketch.add_batch(std::span<const std::uint64_t>(labels, n));
        }
      });
}

}  // namespace ustream
