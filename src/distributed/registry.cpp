#include "distributed/registry.h"

#include <algorithm>

namespace ustream {

void SketchRegistry::put(const std::string& site, F0Estimator sketch) {
  USTREAM_REQUIRE(sketch.params().seed == params_.seed &&
                      sketch.params().capacity == params_.capacity &&
                      sketch.num_copies() == params_.copies,
                  "sketch parameters do not match the registry");
  for (auto& [name, existing] : sites_) {
    if (name == site) {
      existing = std::move(sketch);
      return;
    }
  }
  sites_.emplace_back(site, std::move(sketch));
}

void SketchRegistry::put_serialized(const std::string& site,
                                    std::span<const std::uint8_t> bytes) {
  put(site, F0Estimator::deserialize(bytes));
}

void SketchRegistry::put_framed(const std::string& site,
                                std::span<const std::uint8_t> frame_bytes) {
  const Frame frame = frame_decode(frame_bytes);
  if (frame.header.kind != PayloadKind::kF0Estimator) {
    throw SerializationError(std::string("registry expects an f0-estimator frame, got ") +
                             payload_kind_name(frame.header.kind));
  }
  put(site, F0Estimator::deserialize(std::span<const std::uint8_t>(frame.payload)));
}

bool SketchRegistry::contains(const std::string& site) const {
  return std::any_of(sites_.begin(), sites_.end(),
                     [&](const auto& entry) { return entry.first == site; });
}

std::vector<std::string> SketchRegistry::site_names() const {
  std::vector<std::string> names;
  names.reserve(sites_.size());
  for (const auto& [name, sketch] : sites_) names.push_back(name);
  return names;
}

const F0Estimator& SketchRegistry::find(const std::string& site) const {
  for (const auto& [name, sketch] : sites_) {
    if (name == site) return sketch;
  }
  throw InvalidArgument("unknown site: " + site);
}

F0Estimator SketchRegistry::fold(std::span<const std::string> sites) const {
  USTREAM_REQUIRE(!sites.empty(), "empty site group");
  F0Estimator merged = find(sites[0]);
  for (std::size_t i = 1; i < sites.size(); ++i) merged.merge(find(sites[i]));
  return merged;
}

double SketchRegistry::estimate_union(std::span<const std::string> sites) const {
  return fold(sites).estimate();
}

double SketchRegistry::estimate_union_all() const {
  const auto names = site_names();
  return estimate_union(names);
}

double SketchRegistry::estimate_site(const std::string& site) const {
  return find(site).estimate();
}

SetExpressionEstimate<PairwiseHash> SketchRegistry::compare_groups(
    std::span<const std::string> group_a, std::span<const std::string> group_b) const {
  const F0Estimator a = fold(group_a);
  const F0Estimator b = fold(group_b);
  return estimate_set_expressions(a, b);
}

}  // namespace ustream
