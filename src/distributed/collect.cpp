#include "distributed/collect.h"

#include <algorithm>
#include <thread>

#include "common/error.h"
#include "obs/trace.h"

namespace ustream {

std::chrono::microseconds backoff_delay(const RetryPolicy& policy,
                                        std::uint32_t round) noexcept {
  if (round == 0) return std::chrono::microseconds{0};
  const std::uint32_t shift = std::min<std::uint32_t>(round - 1, 20);
  const auto scaled = policy.base_backoff * (1u << shift);
  return std::min(scaled, policy.max_backoff);
}

void apply_backoff(const RetryPolicy& policy, std::uint32_t round) {
  const auto delay = backoff_delay(policy, round);
  if (policy.sleep_on_backoff && delay.count() > 0) {
    USTREAM_TRACE_SPAN("ustream_collect_backoff_ns");
    std::this_thread::sleep_for(delay);
  }
}

std::vector<std::size_t> CollectReport::missing_sites() const {
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < per_site.size(); ++i) {
    if (!per_site[i].reported) missing.push_back(i);
  }
  return missing;
}

std::uint64_t CollectReport::total_attempts() const noexcept {
  std::uint64_t attempts = 0;
  for (const auto& site : per_site) attempts += site.attempts;
  return attempts;
}

std::string CollectReport::summary() const {
  std::string s = "collected " + std::to_string(sites_reported) + "/" +
                  std::to_string(sites_total) + " sites" +
                  (degraded() ? " (DEGRADED: union estimate is a lower bound)" : "") + ", " +
                  std::to_string(retries) + " retries, " +
                  std::to_string(frames_quarantined) + " quarantined, " +
                  std::to_string(duplicates_dropped) + " duplicates, " +
                  std::to_string(stale_dropped) + " stale" +
                  (deltas_applied > 0 || resyncs > 0
                       ? ", " + std::to_string(deltas_applied) + " deltas, " +
                             std::to_string(resyncs) + " resyncs"
                       : "") +
                  "\nattempts: " + std::to_string(total_attempts()) + " sends for " +
                  std::to_string(sites_reported) + " accepted frames";
  const auto missing = missing_sites();
  if (!missing.empty()) {
    s += "\nmissing sites:";
    for (auto site : missing) {
      s += " " + std::to_string(site);
      if (per_site[site].exhausted) {
        s += "(exhausted after " + std::to_string(per_site[site].attempts) + " attempts)";
      }
    }
  }
  return s;
}

CollectState::CollectState(std::size_t sites, PayloadKind expected_kind, DedupMode mode)
    : expected_kind_(expected_kind), mode_(mode) {
  report_.sites_total = sites;
  report_.per_site.resize(sites);
}

void CollectState::enable_deltas(PayloadKind delta_kind) {
  USTREAM_REQUIRE(mode_ == DedupMode::kLatestWins,
                  "the delta protocol requires latest-wins dedup");
  USTREAM_REQUIRE(delta_kind != expected_kind_,
                  "delta kind must differ from the full-frame kind");
  delta_kind_ = delta_kind;
}

std::optional<CollectState::Accepted> CollectState::ingest(
    std::span<const std::uint8_t> frame_bytes) {
  Frame frame;
  try {
    frame = frame_decode(frame_bytes);
  } catch (const SerializationError&) {
    report_.frames_quarantined += 1;
    return std::nullopt;
  }
  const bool is_delta = delta_kind_.has_value() && frame.header.kind == *delta_kind_;
  // Structurally sound frame, but from the wrong protocol or an unknown
  // sender: also quarantine — the CRC protects integrity, not intent.
  if ((frame.header.kind != expected_kind_ && !is_delta) ||
      frame.header.site >= report_.per_site.size()) {
    report_.frames_quarantined += 1;
    return std::nullopt;
  }
  SiteCollectStatus& status = report_.per_site[frame.header.site];
  if (is_delta) {
    // A delta only extends an intact chain: the site must have reported and
    // the delta must be the immediate successor of the accepted epoch.
    // Retransmits of an already-applied epoch are duplicates/stale (the ack
    // was lost, the state wasn't); everything else is a chain break that
    // obliges the site to resync with a full frame.
    if (status.reported && frame.header.epoch == status.accepted_epoch) {
      report_.duplicates_dropped += 1;
      return std::nullopt;
    }
    if (status.reported && frame.header.epoch < status.accepted_epoch) {
      report_.stale_dropped += 1;
      return std::nullopt;
    }
    // A delta that claims a different group than the chain it extends is a
    // chain break too: the site re-tagged itself, so its mirror is stale.
    if (!status.reported || frame.header.epoch != status.accepted_epoch + 1 ||
        frame.header.group != status.group) {
      report_.resyncs += 1;
      return std::nullopt;
    }
    status.accepted_epoch = frame.header.epoch;
    report_.deltas_applied += 1;
    return Accepted{frame.header.site, frame.header.epoch, frame.header.kind,
                    frame.header.group, std::move(frame.payload)};
  }
  if (status.reported) {
    if (mode_ == DedupMode::kExactlyOnce || frame.header.epoch == status.accepted_epoch) {
      report_.duplicates_dropped += 1;
      return std::nullopt;
    }
    if (frame.header.epoch < status.accepted_epoch) {
      report_.stale_dropped += 1;
      return std::nullopt;
    }
  } else {
    report_.sites_reported += 1;
    status.reported = true;
  }
  status.accepted_epoch = frame.header.epoch;
  status.group = frame.header.group;
  return Accepted{frame.header.site, frame.header.epoch, frame.header.kind,
                  frame.header.group, std::move(frame.payload)};
}

void CollectState::record_send(std::size_t site) {
  SiteCollectStatus& status = report_.per_site[site];
  if (status.attempts > 0) report_.retries += 1;
  status.attempts += 1;
}

void CollectState::record_fresh_send(std::size_t site) {
  report_.per_site[site].attempts += 1;
}

void CollectState::reject_accepted(std::size_t site) {
  SiteCollectStatus& status = report_.per_site[site];
  if (status.reported) {
    status.reported = false;
    report_.sites_reported -= 1;
  }
  status.accepted_epoch = 0;
  report_.frames_quarantined += 1;
}

void CollectState::demote_accepted(std::size_t site, std::uint32_t previous_epoch,
                                   bool previously_reported, bool count_stale,
                                   std::uint16_t previous_group) {
  SiteCollectStatus& status = report_.per_site[site];
  if (status.reported && !previously_reported) {
    status.reported = false;
    report_.sites_reported -= 1;
  }
  status.accepted_epoch = previous_epoch;
  status.group = previous_group;
  if (count_stale) {
    report_.stale_dropped += 1;
  } else {
    report_.duplicates_dropped += 1;
  }
}

void CollectState::demote_delta(std::size_t site, std::uint32_t previous_epoch) {
  SiteCollectStatus& status = report_.per_site[site];
  status.accepted_epoch = previous_epoch;
  USTREAM_REQUIRE(report_.deltas_applied > 0, "demote_delta without an applied delta");
  report_.deltas_applied -= 1;
  report_.resyncs += 1;
}

void CollectState::restore_accepted(std::size_t site, std::uint32_t epoch,
                                    std::uint16_t group) {
  USTREAM_REQUIRE(site < report_.per_site.size(),
                  "restore_accepted: site out of range");
  SiteCollectStatus& status = report_.per_site[site];
  if (!status.reported) {
    status.reported = true;
    report_.sites_reported += 1;
  }
  status.accepted_epoch = epoch;
  status.group = group;
  if (status.attempts == 0) status.attempts = 1;
}

void CollectState::finalize(std::uint32_t max_attempts) {
  for (auto& status : report_.per_site) {
    status.exhausted = !status.reported && status.attempts >= max_attempts;
  }
}

CollectReport merge_reports(const std::vector<CollectReport>& parts) {
  USTREAM_REQUIRE(!parts.empty(), "merge_reports needs at least one part");
  CollectReport merged;
  merged.sites_total = parts[0].sites_total;
  merged.per_site.resize(merged.sites_total);
  for (const CollectReport& part : parts) {
    USTREAM_REQUIRE(part.sites_total == merged.sites_total,
                    "merge_reports: mismatched sites_total");
    merged.frames_quarantined += part.frames_quarantined;
    merged.duplicates_dropped += part.duplicates_dropped;
    merged.stale_dropped += part.stale_dropped;
    merged.deltas_applied += part.deltas_applied;
    merged.resyncs += part.resyncs;
    for (std::size_t s = 0; s < merged.sites_total; ++s) {
      const SiteCollectStatus& in = part.per_site[s];
      SiteCollectStatus& out = merged.per_site[s];
      out.attempts += in.attempts;
      if (in.reported) {
        // At most one shard holds the winning epoch for a site (the shared
        // arbiter demotes losers), but under kLatestWins several shards may
        // each have legitimately held older epochs earlier — the fold keeps
        // the newest.
        if (!out.reported || in.accepted_epoch > out.accepted_epoch) {
          out.accepted_epoch = in.accepted_epoch;
          out.group = in.group;
        }
        out.reported = true;
      }
    }
  }
  for (const SiteCollectStatus& status : merged.per_site) {
    if (status.reported) merged.sites_reported += 1;
    if (status.attempts > 1) merged.retries += status.attempts - 1;
  }
  return merged;
}

}  // namespace ustream
