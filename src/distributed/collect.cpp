#include "distributed/collect.h"

#include <algorithm>
#include <thread>

#include "common/error.h"
#include "obs/trace.h"

namespace ustream {

std::chrono::microseconds backoff_delay(const RetryPolicy& policy,
                                        std::uint32_t round) noexcept {
  if (round == 0) return std::chrono::microseconds{0};
  const std::uint32_t shift = std::min<std::uint32_t>(round - 1, 20);
  const auto scaled = policy.base_backoff * (1u << shift);
  return std::min(scaled, policy.max_backoff);
}

void apply_backoff(const RetryPolicy& policy, std::uint32_t round) {
  const auto delay = backoff_delay(policy, round);
  if (policy.sleep_on_backoff && delay.count() > 0) {
    USTREAM_TRACE_SPAN("ustream_collect_backoff_ns");
    std::this_thread::sleep_for(delay);
  }
}

std::vector<std::size_t> CollectReport::missing_sites() const {
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < per_site.size(); ++i) {
    if (!per_site[i].reported) missing.push_back(i);
  }
  return missing;
}

std::uint64_t CollectReport::total_attempts() const noexcept {
  std::uint64_t attempts = 0;
  for (const auto& site : per_site) attempts += site.attempts;
  return attempts;
}

std::string CollectReport::summary() const {
  std::string s = "collected " + std::to_string(sites_reported) + "/" +
                  std::to_string(sites_total) + " sites" +
                  (degraded() ? " (DEGRADED: union estimate is a lower bound)" : "") + ", " +
                  std::to_string(retries) + " retries, " +
                  std::to_string(frames_quarantined) + " quarantined, " +
                  std::to_string(duplicates_dropped) + " duplicates, " +
                  std::to_string(stale_dropped) + " stale" +
                  "\nattempts: " + std::to_string(total_attempts()) + " sends for " +
                  std::to_string(sites_reported) + " accepted frames";
  const auto missing = missing_sites();
  if (!missing.empty()) {
    s += "\nmissing sites:";
    for (auto site : missing) {
      s += " " + std::to_string(site);
      if (per_site[site].exhausted) {
        s += "(exhausted after " + std::to_string(per_site[site].attempts) + " attempts)";
      }
    }
  }
  return s;
}

CollectState::CollectState(std::size_t sites, PayloadKind expected_kind, DedupMode mode)
    : expected_kind_(expected_kind), mode_(mode) {
  report_.sites_total = sites;
  report_.per_site.resize(sites);
}

std::optional<CollectState::Accepted> CollectState::ingest(
    std::span<const std::uint8_t> frame_bytes) {
  Frame frame;
  try {
    frame = frame_decode(frame_bytes);
  } catch (const SerializationError&) {
    report_.frames_quarantined += 1;
    return std::nullopt;
  }
  // Structurally sound frame, but from the wrong protocol or an unknown
  // sender: also quarantine — the CRC protects integrity, not intent.
  if (frame.header.kind != expected_kind_ || frame.header.site >= report_.per_site.size()) {
    report_.frames_quarantined += 1;
    return std::nullopt;
  }
  SiteCollectStatus& status = report_.per_site[frame.header.site];
  if (status.reported) {
    if (mode_ == DedupMode::kExactlyOnce || frame.header.epoch == status.accepted_epoch) {
      report_.duplicates_dropped += 1;
      return std::nullopt;
    }
    if (frame.header.epoch < status.accepted_epoch) {
      report_.stale_dropped += 1;
      return std::nullopt;
    }
  } else {
    report_.sites_reported += 1;
    status.reported = true;
  }
  status.accepted_epoch = frame.header.epoch;
  return Accepted{frame.header.site, frame.header.epoch, std::move(frame.payload)};
}

void CollectState::record_send(std::size_t site) {
  SiteCollectStatus& status = report_.per_site[site];
  if (status.attempts > 0) report_.retries += 1;
  status.attempts += 1;
}

void CollectState::record_fresh_send(std::size_t site) {
  report_.per_site[site].attempts += 1;
}

void CollectState::reject_accepted(std::size_t site) {
  SiteCollectStatus& status = report_.per_site[site];
  if (status.reported) {
    status.reported = false;
    report_.sites_reported -= 1;
  }
  status.accepted_epoch = 0;
  report_.frames_quarantined += 1;
}

void CollectState::finalize(std::uint32_t max_attempts) {
  for (auto& status : report_.per_site) {
    status.exhausted = !status.reported && status.attempts >= max_attempts;
  }
}

}  // namespace ustream
