// The referee's fault-tolerance toolkit: retry policy, frame validation /
// dedup state, and the CollectReport that makes degraded mode quantifiable.
//
// Mergeable sketches give graceful degradation for free — a missing site's
// sketch lowers the union estimate by a bounded, one-sided amount — but
// only if the referee can SAY which sites are missing. CollectReport is
// that statement: callers still get an estimate from a partial union, plus
// the evidence needed to reason about its bias.
//
// Dedup contract: a frame is identified by (site, epoch). One-shot
// collection (DistributedRun) uses kExactlyOnce — the first valid frame
// per site wins, every later one (retransmit or network duplicate) is
// dropped, so the referee merges each site exactly once. Continuous
// monitoring uses kLatestWins — newer epochs replace older snapshots,
// stale reordered deliveries are discarded, so the per-site prefix only
// moves forward and the union estimate never overcounts.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/frame.h"
#include "core/merge_engine.h"

namespace ustream {

// Ack/retry shape for collection rounds. Backoff between rounds is capped
// exponential: base * 2^round, clamped to max. The defaults keep an
// in-process soak run fast while still exercising the schedule; a real
// deployment would scale these to network RTTs.
struct RetryPolicy {
  std::uint32_t max_attempts_per_site = 6;
  std::chrono::microseconds base_backoff{50};
  std::chrono::microseconds max_backoff{2000};
  bool sleep_on_backoff = true;  // tests may disable the actual sleep
};

// Backoff before retry round `round` (round counts from 1).
std::chrono::microseconds backoff_delay(const RetryPolicy& policy, std::uint32_t round) noexcept;
void apply_backoff(const RetryPolicy& policy, std::uint32_t round);

struct SiteCollectStatus {
  std::uint32_t attempts = 0;       // frames sent on this site's behalf
  bool reported = false;            // a valid frame was accepted
  bool exhausted = false;           // budget spent without acceptance
  std::uint32_t accepted_epoch = 0; // epoch of the accepted/latest snapshot
  std::uint16_t group = 0;          // group id of the accepted snapshot (v2 frames)
};

struct CollectReport {
  std::size_t sites_total = 0;
  std::size_t sites_reported = 0;
  std::uint64_t retries = 0;             // sends beyond each site's first
  std::uint64_t frames_quarantined = 0;  // failed CRC/decode/validation
  std::uint64_t duplicates_dropped = 0;  // same (site, epoch) seen again
  std::uint64_t stale_dropped = 0;       // older epoch than already accepted
  std::uint64_t deltas_applied = 0;      // delta frames accepted onto a chain
  std::uint64_t resyncs = 0;             // delta chain breaks (full frame owed)
  std::vector<SiteCollectStatus> per_site;

  bool complete() const noexcept { return sites_reported == sites_total; }
  bool degraded() const noexcept { return !complete(); }
  std::vector<std::size_t> missing_sites() const;
  // Sum of per-site attempts: every frame sent on some site's behalf,
  // retransmissions included — the "stats count every attempt" contract
  // (DESIGN.md §6.2). Compare against sites_reported (frames that changed
  // referee state) to see what the fault recovery cost.
  std::uint64_t total_attempts() const noexcept;
  // One line per fact, e.g. for the CLI:
  //   collected 7/8 sites (DEGRADED), 5 retries, 3 quarantined, 2 duplicates
  //   attempts: 12 sends for 7 accepted frames
  //   missing sites: 4 (exhausted after 6 attempts)
  std::string summary() const;
};

enum class DedupMode { kExactlyOnce, kLatestWins };

// Validates drained frames and maintains the per-site dedup state plus the
// running CollectReport. The payload of an accepted frame is handed back to
// the caller; everything else lands in a report counter.
class CollectState {
 public:
  CollectState(std::size_t sites, PayloadKind expected_kind, DedupMode mode);

  // Opts into the continuous-mode delta protocol: frames of `delta_kind`
  // are accepted IFF they extend the site's chain exactly — the site has
  // reported and the delta's epoch is accepted_epoch + 1. Anything else
  // (unreported site, epoch gap) counts a resync: the frame is dropped and
  // the site owes a full frame of the expected kind, which re-bases the
  // chain through the ordinary latest-wins path. Requires kLatestWins — a
  // chain is meaningless under exactly-once.
  void enable_deltas(PayloadKind delta_kind);

  struct Accepted {
    std::size_t site = 0;
    std::uint32_t epoch = 0;
    PayloadKind kind = PayloadKind::kOpaque;  // expected kind, or the delta kind
    std::uint16_t group = 0;                  // frame's group tag (0 = ungrouped)
    std::vector<std::uint8_t> payload;
  };

  // Frame-layer verdict on one drained message. Returns the payload iff
  // this (site, epoch) is accepted under the dedup mode; otherwise updates
  // quarantine/duplicate/stale counters and returns nullopt. Never throws
  // on bad bytes — corruption is data here, not an error.
  std::optional<Accepted> ingest(std::span<const std::uint8_t> frame_bytes);

  // Attempt accounting. record_send counts a retransmission (retry) when
  // the site was already sent on behalf of; record_fresh_send never does —
  // continuous monitors use it for periodic pushes of NEW epochs, which are
  // fresh messages, not retries.
  void record_send(std::size_t site);
  void record_fresh_send(std::size_t site);
  // Un-accepts a frame whose CRC passed but whose payload failed to
  // deserialize (a 2^-32 CRC collision): quarantines it and reopens the
  // site so the retry loop can try again.
  void reject_accepted(std::size_t site);
  // Un-accepts the frame ingest() just accepted for `site` because a
  // GLOBAL arbiter (another referee shard) already holds a conflicting
  // acceptance, restoring the site's prior local state and counting the
  // frame as a duplicate (or stale, when the global winner's epoch is
  // newer). This is how a sharded referee keeps the folded ledger
  // identical to a sequential referee over the same frame stream: the
  // frame a single loop would have dropped at its own dedup table is
  // dropped here at the shared one, under the same counter.
  void demote_accepted(std::size_t site, std::uint32_t previous_epoch,
                       bool previously_reported, bool count_stale,
                       std::uint16_t previous_group = 0);
  // Un-accepts a DELTA ingest() just accepted because the global arbiter's
  // chain head disagrees (another shard advanced the site, or the payload
  // failed to apply): rolls the epoch back and converts the acceptance
  // into a resync, so the site retransmits a full frame.
  void demote_delta(std::size_t site, std::uint32_t previous_epoch);
  // Ledger restore hook for crash recovery (durability/recovery.h): marks
  // `site` as reported at `epoch` with one attempt, exactly as if its
  // winning frame had been sent once and accepted. Replayed WAL frames go
  // through ingest() for validation; this hook then transplants the
  // resulting acceptance into the referee's live ledger without touching
  // the retry/duplicate counters — attempts spent before the crash are
  // history the restarted ledger reports as one clean send per site.
  void restore_accepted(std::size_t site, std::uint32_t epoch,
                        std::uint16_t group = 0);
  void finalize(std::uint32_t max_attempts);  // marks exhausted sites

  // The referee's merge step: folds the accepted per-site sketches (site
  // order, gaps = sites that never reported) into the union sketch on the
  // engine's pool via deterministic tree reduction. Byte-identical to a
  // sequential site-order fold for every UnionSketch — see merge_engine.h
  // for the argument and tests/test_merge_engine.cpp for the enforcement.
  // Returns nullopt only for a fully degraded (zero-site) collection.
  template <typename Sketch>
  std::optional<Sketch> finish(std::vector<std::optional<Sketch>>&& accepted,
                               MergeEngine& engine = MergeEngine::shared()) const {
    return engine.reduce(std::move(accepted));
  }

  bool site_reported(std::size_t site) const { return report_.per_site[site].reported; }
  std::uint32_t site_attempts(std::size_t site) const { return report_.per_site[site].attempts; }
  bool all_reported() const noexcept { return report_.sites_reported == report_.sites_total; }

  CollectReport& report() noexcept { return report_; }
  const CollectReport& report() const noexcept { return report_; }

 private:
  PayloadKind expected_kind_;
  DedupMode mode_;
  std::optional<PayloadKind> delta_kind_;
  CollectReport report_;
};

// Folds per-shard referee ledgers into the single report a sequential
// referee over the same frame stream would produce. Per site: attempts
// sum, reported = any shard reported, accepted_epoch = max over reporting
// shards (cross-shard demotion guarantees at most one shard holds the
// winning epoch), group = the winning shard's group tag. Quarantine/
// duplicate/stale counters sum; retries are recomputed from the folded
// attempts (sum over sites of attempts - 1) so a site whose
// retransmissions landed on different shards still counts them — each
// shard alone saw one attempt, the union saw a retry.
CollectReport merge_reports(const std::vector<CollectReport>& parts);

// Per-group sketch for a grouped collection: the reduced union of one
// group's reporting sites, plus which sites contributed.
template <typename Sketch>
struct GroupSketch {
  std::uint16_t group = 0;
  std::vector<std::size_t> sites;  // reporting sites in site order
  Sketch sketch;
};

// The grouped counterpart of CollectState::finish(): buckets the accepted
// per-site sketches by the group tag recorded in `report` and reduces each
// bucket independently through the engine. Site order is preserved within
// each bucket and groups come out sorted by id, so the result is
// deterministic and byte-identical to running one single-group collection
// per group over the same frames — the property the sharded-referee tests
// pin down. Sites that never reported are skipped (per-group degraded
// mode); groups with no reporting site simply don't appear.
template <typename Sketch>
std::vector<GroupSketch<Sketch>> reduce_groups(
    const CollectReport& report, std::vector<std::optional<Sketch>>&& accepted,
    MergeEngine& engine = MergeEngine::shared()) {
  std::vector<GroupSketch<Sketch>> out;
  std::vector<std::uint16_t> order;  // group ids, first-seen; sorted below
  for (std::size_t site = 0; site < accepted.size(); ++site) {
    if (!accepted[site].has_value()) continue;
    const std::uint16_t g =
        site < report.per_site.size() ? report.per_site[site].group : 0;
    if (std::find(order.begin(), order.end(), g) == order.end()) order.push_back(g);
  }
  std::sort(order.begin(), order.end());
  for (std::uint16_t g : order) {
    std::vector<std::size_t> sites;
    std::vector<std::optional<Sketch>> members;
    for (std::size_t site = 0; site < accepted.size(); ++site) {
      if (!accepted[site].has_value()) continue;
      const std::uint16_t sg =
          site < report.per_site.size() ? report.per_site[site].group : 0;
      if (sg != g) continue;
      sites.push_back(site);
      members.push_back(std::move(accepted[site]));
      accepted[site].reset();
    }
    auto reduced = engine.reduce(std::move(members));
    if (!reduced.has_value()) continue;  // unreachable: bucket had members
    out.push_back(GroupSketch<Sketch>{g, std::move(sites), std::move(*reduced)});
  }
  return out;
}

}  // namespace ustream
