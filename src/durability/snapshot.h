// Epoch snapshots: compaction for the referee's WAL (DESIGN.md §11).
//
// A snapshot is a *compacted WAL*: one record per reported site — the
// frame that currently wins that site's slot in the cross-shard arbiter —
// in the same [u32 len][frame] record format behind the same 32-byte
// checksummed header (wal.h), with the header's `seq` field carrying the
// snapshot sequence number and `shard` fixed to kSnapshotShard. Reusing
// the record format means recovery has exactly one replay path: a
// snapshot loads by replaying its records through CollectState just like
// a WAL segment, so snapshot-assisted and tail-only recovery cannot
// diverge.
//
// Coordination with the WAL needs no byte cursors: writing snapshot S
// rotates every shard's writer into a fresh segment stamped with
// watermark S. Recovery then replays the newest valid snapshot plus only
// the segments whose watermark >= S — the covered tail is skipped, and
// if the newest snapshot is corrupt the previous one still works (older
// segments replay more records, but replaying a superseded record just
// loses arbitration — correctness is unaffected).
//
// Snapshots are written to a temp file and renamed into place, so a crash
// mid-snapshot leaves either the old set or the old set plus one complete
// new file — never a half-written current snapshot.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "durability/wal.h"

namespace ustream::durability {

// Sentinel shard id marking a header as a snapshot rather than a segment.
inline constexpr std::uint32_t kSnapshotShard = 0xffffffffu;

std::string snapshot_name(std::uint32_t seq);

struct SnapshotInfo {
  std::string path;
  std::uint64_t run_id = 0;
  std::uint32_t seq = 0;
  std::uint64_t file_bytes = 0;
  bool valid = false;   // header + every record structurally intact
  std::string error;
};

// Writes snapshot `seq` containing `frames` (winning frames, verbatim)
// atomically into `dir`. Throws SerializationError on filesystem failure.
void write_snapshot(const std::string& dir, std::uint64_t run_id,
                    std::uint32_t seq,
                    const std::vector<std::vector<std::uint8_t>>& frames);

// Lists snapshots in `dir`, sorted by seq ascending; corrupt files are
// included with valid=false so recovery can fall back and `ustream wal`
// can display them. A snapshot with a torn record tail is invalid in its
// entirety (unlike a WAL segment): it was written atomically, so a torn
// tail means the file itself is damaged, not that a crash interrupted it.
std::vector<SnapshotInfo> scan_snapshots(const std::string& dir);

// Loads every frame of one snapshot. Throws SerializationError if the
// header or any record is invalid (callers filter on SnapshotInfo::valid).
std::vector<std::vector<std::uint8_t>> load_snapshot(const std::string& path);

}  // namespace ustream::durability
