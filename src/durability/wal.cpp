#include "durability/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fstream>

#include "common/crc32c.h"
#include "obs/metrics.h"

namespace ustream::durability {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

std::string errno_message(const char* op, const std::string& path) {
  return std::string(op) + " failed for " + path + ": " + std::strerror(errno);
}

obs::Counter& wal_records_counter() {
  static obs::Counter& c =
      obs::default_registry().counter("ustream_wal_records_total");
  return c;
}
obs::Counter& wal_bytes_counter() {
  static obs::Counter& c =
      obs::default_registry().counter("ustream_wal_bytes_total");
  return c;
}
obs::Counter& wal_fsyncs_counter() {
  static obs::Counter& c =
      obs::default_registry().counter("ustream_wal_fsyncs_total");
  return c;
}
obs::Counter& wal_rotations_counter() {
  static obs::Counter& c =
      obs::default_registry().counter("ustream_wal_rotations_total");
  return c;
}

}  // namespace

const char* fsync_policy_name(FsyncPolicy policy) noexcept {
  switch (policy) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kInterval:
      return "interval";
    case FsyncPolicy::kNever:
      return "never";
  }
  return "?";
}

FsyncPolicy parse_fsync_policy(const std::string& name) {
  if (name == "always") return FsyncPolicy::kAlways;
  if (name == "interval") return FsyncPolicy::kInterval;
  if (name == "never") return FsyncPolicy::kNever;
  throw InvalidArgument("unknown fsync policy '" + name +
                        "' (expected always, interval, or never)");
}

std::string wal_segment_name(std::uint32_t shard, std::uint32_t seq) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "wal-%05u-%08u.log", shard, seq);
  return buf;
}

std::vector<std::uint8_t> encode_wal_header(std::uint64_t run_id,
                                            std::uint32_t shard,
                                            std::uint32_t seq,
                                            std::uint32_t watermark) {
  std::vector<std::uint8_t> out;
  out.reserve(kWalHeaderBytes);
  put_u32(out, kWalMagic);
  out.push_back(kWalVersion);
  out.push_back(0);
  out.push_back(0);
  out.push_back(0);
  put_u64(out, run_id);
  put_u32(out, shard);
  put_u32(out, seq);
  put_u32(out, watermark);
  put_u32(out, crc32c(std::span<const std::uint8_t>(out.data(), 28)));
  return out;
}

namespace {

// Parses the 32-byte segment header into `info`; on failure sets
// info.error and returns false instead of throwing, so scans can list
// corrupt files for `ustream wal` to display.
bool parse_wal_header(std::span<const std::uint8_t> bytes, SegmentInfo& info) {
  if (bytes.size() < kWalHeaderBytes) {
    info.error = "file shorter than the 32-byte segment header";
    return false;
  }
  const std::uint8_t* p = bytes.data();
  if (get_u32(p) != kWalMagic) {
    info.error = "bad magic (not a WAL segment)";
    return false;
  }
  if (p[4] != kWalVersion) {
    info.error = "unsupported WAL version " + std::to_string(p[4]);
    return false;
  }
  if (p[5] != 0 || p[6] != 0 || p[7] != 0) {
    info.error = "nonzero reserved header bytes";
    return false;
  }
  const std::uint32_t want = get_u32(p + 28);
  const std::uint32_t got = crc32c(bytes.subspan(0, 28));
  if (want != got) {
    info.error = "header CRC mismatch";
    return false;
  }
  info.run_id = get_u64(p + 8);
  info.shard = get_u32(p + 16);
  info.seq = get_u32(p + 20);
  info.watermark = get_u32(p + 24);
  return true;
}

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SerializationError("cannot open " + path);
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  in.seekg(0, std::ios::beg);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(bytes.data()), size)) {
    throw SerializationError("short read from " + path);
  }
  return bytes;
}

}  // namespace

std::vector<SegmentInfo> scan_wal_segments(const std::string& dir) {
  std::vector<SegmentInfo> segments;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return segments;  // absent dir == empty WAL
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.rfind("wal-", 0) != 0 || name.size() < 8 ||
        name.substr(name.size() - 4) != ".log") {
      continue;
    }
    SegmentInfo info;
    info.path = dir + "/" + name;
    try {
      const auto bytes = read_file_bytes(info.path);
      info.file_bytes = bytes.size();
      info.header_valid = parse_wal_header(bytes, info);
    } catch (const SerializationError& e) {
      info.error = e.what();
    }
    segments.push_back(std::move(info));
  }
  ::closedir(d);
  std::sort(segments.begin(), segments.end(),
            [](const SegmentInfo& a, const SegmentInfo& b) {
              if (a.shard != b.shard) return a.shard < b.shard;
              if (a.seq != b.seq) return a.seq < b.seq;
              return a.path < b.path;
            });
  return segments;
}

SegmentReader::SegmentReader(const std::string& path)
    : bytes_(read_file_bytes(path)) {
  info_.path = path;
  info_.file_bytes = bytes_.size();
  info_.header_valid = parse_wal_header(bytes_, info_);
  if (!info_.header_valid) {
    throw SerializationError("WAL segment " + path + ": " + info_.error);
  }
}

std::optional<std::span<const std::uint8_t>> SegmentReader::next() {
  if (done_) return std::nullopt;
  if (pos_ == bytes_.size()) {  // clean end
    done_ = true;
    return std::nullopt;
  }
  if (bytes_.size() - pos_ < 4) {
    torn_tail_ = true;
    stranded_bytes_ = bytes_.size() - pos_;
    done_ = true;
    return std::nullopt;
  }
  const std::uint32_t len = get_u32(bytes_.data() + pos_);
  if (len > kMaxRecordBytes || bytes_.size() - pos_ - 4 < len) {
    torn_tail_ = true;
    stranded_bytes_ = bytes_.size() - pos_;
    done_ = true;
    return std::nullopt;
  }
  std::span<const std::uint8_t> record(bytes_.data() + pos_ + 4, len);
  pos_ += 4 + len;
  ++records_read_;
  return record;
}

WalWriter::WalWriter(WalConfig config, std::uint32_t start_seq,
                     std::uint32_t watermark)
    : config_(std::move(config)),
      seq_(start_seq),
      watermark_(watermark),
      last_fsync_(std::chrono::steady_clock::now()) {
  if (::mkdir(config_.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    throw SerializationError(errno_message("mkdir", config_.dir));
  }
  open_segment();
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    try {
      flush_buffer();
    } catch (...) {
      // Destructor: the process is going down anyway; data already
      // committed is on disk, uncommitted appends were never acked.
    }
    ::close(fd_);
  }
}

void WalWriter::open_segment() {
  const std::string path = config_.dir + "/" +
                           wal_segment_name(config_.shard, seq_);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_APPEND, 0644);
  if (fd_ < 0) throw SerializationError(errno_message("open", path));
  const auto header =
      encode_wal_header(config_.run_id, config_.shard, seq_, watermark_);
  const char* p = reinterpret_cast<const char*>(header.data());
  std::size_t left = header.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw SerializationError(errno_message("write", path));
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  // The header must be durable before any record relies on it: fsync the
  // file, then the directory so the new name survives too.
  if (::fsync(fd_) != 0) {
    throw SerializationError(errno_message("fsync", path));
  }
  const int dirfd = ::open(config_.dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dirfd >= 0) {
    ::fsync(dirfd);
    ::close(dirfd);
  }
  segment_offset_ = header.size();
}

void WalWriter::append(std::span<const std::uint8_t> frame_bytes) {
  USTREAM_REQUIRE(frame_bytes.size() <= kMaxRecordBytes,
                  "WAL record larger than kMaxRecordBytes");
  put_u32(buffer_, static_cast<std::uint32_t>(frame_bytes.size()));
  buffer_.insert(buffer_.end(), frame_bytes.begin(), frame_bytes.end());
  ++records_;
  wal_records_counter().add(1);
}

void WalWriter::flush_buffer() {
  if (buffer_.empty()) return;
  const char* p = reinterpret_cast<const char*>(buffer_.data());
  std::size_t left = buffer_.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw SerializationError(errno_message("write", config_.dir));
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  bytes_ += buffer_.size();
  segment_offset_ += buffer_.size();
  wal_bytes_counter().add(buffer_.size());
  buffer_.clear();
}

void WalWriter::do_fsync() {
  if (::fsync(fd_) != 0) {
    throw SerializationError(errno_message("fsync", config_.dir));
  }
  ++fsyncs_;
  wal_fsyncs_counter().add(1);
  last_fsync_ = std::chrono::steady_clock::now();
}

void WalWriter::commit() {
  flush_buffer();
  switch (config_.fsync) {
    case FsyncPolicy::kAlways:
      do_fsync();
      break;
    case FsyncPolicy::kInterval: {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_fsync_ >= config_.fsync_interval) do_fsync();
      break;
    }
    case FsyncPolicy::kNever:
      break;
  }
  if (segment_offset_ >= config_.segment_bytes) rotate(watermark_);
}

void WalWriter::rotate(std::uint32_t watermark) {
  flush_buffer();
  do_fsync();  // the old segment is final — make it durable
  ::close(fd_);
  fd_ = -1;
  ++seq_;
  watermark_ = watermark;
  ++rotations_;
  wal_rotations_counter().add(1);
  open_segment();
}

void WalWriter::sync() {
  flush_buffer();
  do_fsync();
}

}  // namespace ustream::durability
