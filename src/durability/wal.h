// Write-ahead log for the referee's collection plane (DESIGN.md §11).
//
// A referee crash mid-collection used to discard every accepted frame even
// though the sites already held 'A' acks for them — the one fault the
// retry/dedup machinery cannot paper over, because an acked site never
// retransmits on its own. The WAL closes that hole: an accepted wire frame
// is appended to a per-shard log and written to the kernel BEFORE its ack
// byte is queued, so a kill -9 referee can be restarted with
// `serve --recover` and every acked frame replayed (durability/recovery.h).
//
// The record format leans on PR 2's framing: accepted frames are already
// CRC32C-checksummed version-1 wire frames, so the log record IS the frame,
// verbatim, behind the same u32 length prefix the TCP stream uses:
//
//   segment := header record*
//   record  := [u32 LE length][frame bytes]      (length <= kMaxRecordBytes)
//
// Segment header (32 bytes, little-endian, CRC32C over bytes [0, 28)):
//
//   offset  size  field
//        0     4  magic      "USWL" (0x4c575355)
//        4     1  version    kWalVersion
//        5     3  reserved   must be zero
//        8     8  run_id     identifies one collection run across restarts
//       16     4  shard      writer's shard index
//       20     4  seq        segment sequence number within the shard chain
//       24     4  watermark  snapshots written before this segment opened
//       28     4  crc        CRC32C over bytes [0, 28)
//
// Torn-write tolerance: a crash can strand a partial record at the tail of
// the last segment (short length prefix, short body, or garbage bytes).
// Replay slices records structurally (length in bounds, body complete) and
// validates every frame's own CRC; the first record that fails either
// check ends that segment's replay cleanly — the intact prefix is kept,
// nothing after it is trusted (the stream is desynchronized past a bad
// length). tests/test_durability.cpp fuzzes this with the same seeded
// corruption matrix style as tests/test_fuzz.cpp.
//
// Fsync policy is the durability/throughput dial (group commit):
//   kAlways    fsync before every ack — survives power loss per frame;
//   kInterval  fsync when `fsync_interval` has elapsed since the last one —
//              bounded power-loss window, cheap steady state;
//   kNever     no fsync until close() — survives process death (the write()
//              has reached the kernel) but not machine death.
// All three policies write() buffered records before commit() returns, so
// the ack-implies-logged contract holds against kill -9 regardless.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"

namespace ustream::durability {

inline constexpr std::uint32_t kWalMagic = 0x4c575355u;  // "USWL"
inline constexpr std::uint8_t kWalVersion = 1;
inline constexpr std::size_t kWalHeaderBytes = 32;
inline constexpr std::size_t kMaxRecordBytes = 64u << 20;

enum class FsyncPolicy : std::uint8_t { kAlways, kInterval, kNever };

const char* fsync_policy_name(FsyncPolicy policy) noexcept;
// Parses "always" / "interval" / "never"; throws InvalidArgument otherwise.
FsyncPolicy parse_fsync_policy(const std::string& name);

struct WalConfig {
  std::string dir;
  std::uint64_t run_id = 0;
  std::uint32_t shard = 0;
  FsyncPolicy fsync = FsyncPolicy::kInterval;
  std::chrono::milliseconds fsync_interval{50};
  // Rotation threshold: a commit that leaves the segment past this size
  // closes it and opens the next one in the chain.
  std::uint64_t segment_bytes = 64ull << 20;
};

// Segment file name within a WAL dir: wal-<shard>-<seq>.log (zero-padded
// so lexicographic order is chain order).
std::string wal_segment_name(std::uint32_t shard, std::uint32_t seq);

// The 32-byte checksummed segment header (exposed for snapshot files,
// which reuse the layout, and for corruption tests).
std::vector<std::uint8_t> encode_wal_header(std::uint64_t run_id,
                                            std::uint32_t shard,
                                            std::uint32_t seq,
                                            std::uint32_t watermark);

// One segment's header plus what a structural scan learned about it.
struct SegmentInfo {
  std::string path;
  std::uint64_t run_id = 0;
  std::uint32_t shard = 0;
  std::uint32_t seq = 0;
  std::uint32_t watermark = 0;  // snapshots written before this segment opened
  std::uint64_t file_bytes = 0;
  bool header_valid = false;    // magic/version/CRC all check out
  std::string error;            // why header_valid is false, for `ustream wal`
};

// Scans `dir` for WAL segments and parses their headers. Returns segments
// sorted by (shard, seq); files whose header fails validation are still
// listed (header_valid = false) so inspection tools can show them. A
// missing directory is an empty WAL, not an error.
std::vector<SegmentInfo> scan_wal_segments(const std::string& dir);

// Iterates the records of one segment. Structural slicing only — callers
// replay each record through frame_decode (recovery.h) or show it
// (`ustream wal dump`); this class just finds the record boundaries and
// detects the torn tail.
class SegmentReader {
 public:
  // Reads the whole file; throws SerializationError if the header is
  // invalid (callers filter on SegmentInfo::header_valid first).
  explicit SegmentReader(const std::string& path);

  const SegmentInfo& info() const noexcept { return info_; }

  // Next record's frame bytes, or nullopt at end-of-segment (clean or
  // torn — check torn_tail() to tell which).
  std::optional<std::span<const std::uint8_t>> next();

  // True once next() stopped because the tail is not a complete record:
  // a short length prefix, a body shorter than its announced length, or a
  // length past kMaxRecordBytes (garbage — the stream is desynchronized).
  bool torn_tail() const noexcept { return torn_tail_; }
  std::uint64_t records_read() const noexcept { return records_read_; }
  // Bytes stranded past the last intact record (0 for a clean tail).
  std::uint64_t stranded_bytes() const noexcept { return stranded_bytes_; }

 private:
  SegmentInfo info_;
  std::vector<std::uint8_t> bytes_;
  std::size_t pos_ = kWalHeaderBytes;
  std::uint64_t records_read_ = 0;
  std::uint64_t stranded_bytes_ = 0;
  bool torn_tail_ = false;
  bool done_ = false;
};

// Append side: one writer per shard, owned by the referee and driven under
// the cross-shard arbiter mutex (referee_server.cpp), so no locking of its
// own. append() buffers; commit() write()s the buffer to the segment file
// and fsyncs per policy — the ack for an accepted frame is only queued
// after commit() returns.
class WalWriter {
 public:
  // Opens segment `start_seq` in config.dir (creating the directory), with
  // `watermark` snapshots already written. Throws SerializationError on
  // any filesystem failure — durability that cannot be provided must be a
  // loud error, not a silent downgrade.
  WalWriter(WalConfig config, std::uint32_t start_seq, std::uint32_t watermark);
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Buffers one record ([len][frame]). The frame is appended verbatim —
  // it carries its own CRC.
  void append(std::span<const std::uint8_t> frame_bytes);

  // Writes every buffered byte to the kernel (one write() — the group
  // commit), fsyncs per policy, then rotates if the segment is past
  // config.segment_bytes.
  void commit();

  // Closes the current segment and opens the next with a new watermark
  // (called when a snapshot supersedes everything logged so far).
  void rotate(std::uint32_t watermark);

  // Flushes and fsyncs regardless of policy (clean shutdown).
  void sync();

  std::uint64_t records_appended() const noexcept { return records_; }
  std::uint64_t bytes_appended() const noexcept { return bytes_; }
  std::uint64_t fsyncs() const noexcept { return fsyncs_; }
  std::uint64_t rotations() const noexcept { return rotations_; }
  std::uint32_t segment_seq() const noexcept { return seq_; }

 private:
  void open_segment();
  void flush_buffer();
  void do_fsync();

  WalConfig config_;
  int fd_ = -1;
  std::uint32_t seq_ = 0;
  std::uint32_t watermark_ = 0;
  std::uint64_t segment_offset_ = 0;  // bytes written to the current segment
  std::vector<std::uint8_t> buffer_;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t fsyncs_ = 0;
  std::uint64_t rotations_ = 0;
  std::chrono::steady_clock::time_point last_fsync_;
};

}  // namespace ustream::durability
