// Crash recovery for the referee: scan, replay, resume (DESIGN.md §11).
//
// Recovery rebuilds the arbiter's acceptance state from the durable
// artifacts in a WAL dir: the newest valid snapshot (a compacted WAL,
// snapshot.h) plus every WAL segment the snapshot does not cover, replayed
// through a fresh CollectState — the SAME acceptance path live frames take,
// so exactly-once / latest-wins semantics are preserved by construction.
// Replay order across per-shard segment files is irrelevant: only
// arbitration winners were ever logged, so under exactly-once each site
// appears at most once globally, and under latest-wins replay is a
// max-over-epochs merge — both order-independent.
//
// What "byte-identical resume" means: the recovered referee holds, for
// every site that was acked before the crash, the exact frame bytes that
// won arbitration. Sites re-pushing after the restart are deduped against
// that state exactly as they would have been against the live state, so
// the merged output of (crash, recover, finish) equals the uninterrupted
// run's bytes. Attempt/duplicate *counters* restart at one-per-recovered-
// site: retries burned before the crash are not replayed (the WAL logs
// winners, not traffic).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/frame.h"
#include "distributed/collect.h"
#include "durability/snapshot.h"
#include "durability/wal.h"

namespace ustream::durability {

// One site's recovered acceptance: the winning epoch and the verbatim
// winning frame (kept so snapshots can be rewritten and re-pushes after
// restart can be compared against real state, not a summary of it).
// Under the continuous delta protocol the winning state is a CHAIN: the
// last full frame plus every delta accepted on top of it, in log order
// (`epoch` is then the chain head — the last delta's epoch). Replaying
// frame-then-deltas through the same sink path reproduces the pre-crash
// mirror; snapshots flatten the chain in that order so a recovery from
// snapshot rebuilds it identically.
struct RecoveredSite {
  std::uint32_t epoch = 0;
  std::vector<std::uint8_t> frame;
  std::vector<std::vector<std::uint8_t>> deltas;
};

struct RecoveryResult {
  // site -> recovered acceptance (nullopt = site had not reported).
  std::vector<std::optional<RecoveredSite>> sites;
  std::uint64_t frames_replayed = 0;   // accepted by the replay CollectState
  std::uint64_t frames_superseded = 0; // valid but lost replay arbitration
  std::uint64_t frames_corrupt = 0;    // failed frame CRC/validation
  std::uint64_t segments_replayed = 0;
  std::uint64_t segments_skipped = 0;  // covered by the loaded snapshot
  std::uint64_t torn_tails = 0;        // segments ending in a partial record
  std::uint64_t stranded_bytes = 0;    // bytes past the last intact record
  bool used_snapshot = false;
  std::uint32_t snapshot_seq = 0;
  std::uint64_t run_id = 0;
  // Highest segment seq seen per shard file set, so restarted writers
  // continue the chain instead of colliding with existing files.
  std::uint32_t max_segment_seq = 0;
  std::uint32_t max_snapshot_seq = 0;

  std::size_t sites_recovered() const noexcept;
  std::string summary() const;  // one line for the serve banner / JSON
};

struct RecoveryOptions {
  std::string dir;
  std::size_t sites = 0;
  PayloadKind expected_kind = PayloadKind::kOpaque;
  DedupMode dedup = DedupMode::kExactlyOnce;
  // Continuous mode: accept logged delta frames of this kind onto their
  // site's chain during replay (requires kLatestWins, like the live path).
  std::optional<PayloadKind> delta_kind;
};

// Replays the WAL dir into a RecoveryResult. Corrupt snapshots fall back
// to the previous valid one; a segment's torn tail ends that segment's
// replay cleanly (the intact prefix is kept). Segments whose header is
// invalid or whose run_id disagrees with the chain are skipped with a
// corrupt count rather than aborting — recovery's job is to salvage every
// frame that provably survived, not to insist the dir is pristine.
RecoveryResult recover_referee_state(const RecoveryOptions& options);

// The referee's durability coordinator: per-shard WalWriters, the set of
// winning frames (for snapshots), and the snapshot trigger. All methods
// are called under the referee's cross-shard arbiter mutex — the mutex
// that already serializes acceptance is what makes "log in acceptance
// order" free — so DurableLog itself takes no locks.
class DurableLog {
 public:
  struct Options {
    std::string dir;
    FsyncPolicy fsync = FsyncPolicy::kInterval;
    std::chrono::milliseconds fsync_interval{50};
    std::uint64_t segment_bytes = 64ull << 20;
    // Snapshot after this many newly accepted frames (0 = never).
    std::uint64_t snapshot_every = 0;
  };

  // Fresh log (no recovery): `dir` must not already hold WAL artifacts —
  // starting a new run over an old run's log would make `--recover` a
  // footgun, so the caller must pass recovered state or use a clean dir.
  DurableLog(Options options, std::size_t sites, std::uint32_t shards,
             std::uint64_t run_id);
  // Resumed log: continues the segment chains and snapshot sequence from
  // `recovered`, and seeds the winning-frame set from it.
  DurableLog(Options options, std::size_t sites, std::uint32_t shards,
             RecoveryResult recovered);
  ~DurableLog();

  // Logs one arbitration winner: appends the frame to shard's WAL and
  // commits (write + policy fsync) so the caller may ack. May write a
  // snapshot and rotate every shard's writer when snapshot_every is hit.
  // `is_delta` appends the frame to the site's recovered chain instead of
  // replacing it (the site must already hold a full frame); a full frame
  // always resets the chain.
  void log_accepted(std::uint32_t shard, std::uint32_t site,
                    std::uint32_t epoch,
                    std::span<const std::uint8_t> frame_bytes,
                    bool is_delta = false);

  // Final flush+fsync on every shard (clean shutdown).
  void sync_all();

  const RecoveryResult& recovered() const noexcept { return recovered_; }
  std::uint64_t run_id() const noexcept { return run_id_; }
  std::uint64_t records_logged() const noexcept { return records_logged_; }
  std::uint64_t bytes_logged() const noexcept;
  std::uint64_t fsyncs() const noexcept;
  std::uint64_t snapshots_written() const noexcept { return snapshots_written_; }

 private:
  void open_writers(std::uint32_t shards, std::uint32_t start_seq,
                    std::uint32_t watermark);
  void maybe_snapshot();

  Options options_;
  std::uint64_t run_id_ = 0;
  RecoveryResult recovered_;
  std::vector<std::unique_ptr<WalWriter>> writers_;  // one per shard
  // site -> current winning frame (what a snapshot serializes).
  std::vector<std::optional<RecoveredSite>> winners_;
  std::uint32_t next_snapshot_seq_ = 1;
  std::uint64_t accepted_since_snapshot_ = 0;
  std::uint64_t records_logged_ = 0;
  std::uint64_t snapshots_written_ = 0;
};

// True if `dir` already holds WAL segments or snapshots (used by serve to
// demand an explicit --recover instead of silently mixing runs).
bool wal_dir_dirty(const std::string& dir);

}  // namespace ustream::durability
