#include "durability/snapshot.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/metrics.h"

namespace ustream::durability {

namespace {

obs::Counter& snapshots_counter() {
  static obs::Counter& c =
      obs::default_registry().counter("ustream_wal_snapshots_total");
  return c;
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void write_all(int fd, const std::uint8_t* p, std::size_t left,
               const std::string& path) {
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw SerializationError("write failed for " + path + ": " +
                               std::strerror(errno));
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

}  // namespace

std::string snapshot_name(std::uint32_t seq) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "snap-%08u.snap", seq);
  return buf;
}

void write_snapshot(const std::string& dir, std::uint64_t run_id,
                    std::uint32_t seq,
                    const std::vector<std::vector<std::uint8_t>>& frames) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    throw SerializationError("mkdir failed for " + dir + ": " +
                             std::strerror(errno));
  }
  std::vector<std::uint8_t> body =
      encode_wal_header(run_id, kSnapshotShard, seq, seq);
  for (const auto& frame : frames) {
    append_u32(body, static_cast<std::uint32_t>(frame.size()));
    body.insert(body.end(), frame.begin(), frame.end());
  }
  const std::string final_path = dir + "/" + snapshot_name(seq);
  const std::string tmp_path = final_path + ".tmp";
  const int fd = ::open(tmp_path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw SerializationError("open failed for " + tmp_path + ": " +
                             std::strerror(errno));
  }
  try {
    write_all(fd, body.data(), body.size(), tmp_path);
    if (::fsync(fd) != 0) {
      throw SerializationError("fsync failed for " + tmp_path + ": " +
                               std::strerror(errno));
    }
  } catch (...) {
    ::close(fd);
    ::unlink(tmp_path.c_str());
    throw;
  }
  ::close(fd);
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    ::unlink(tmp_path.c_str());
    throw SerializationError("rename failed for " + final_path + ": " +
                             std::strerror(errno));
  }
  const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dirfd >= 0) {
    ::fsync(dirfd);
    ::close(dirfd);
  }
  snapshots_counter().add(1);
}

std::vector<SnapshotInfo> scan_snapshots(const std::string& dir) {
  std::vector<SnapshotInfo> snapshots;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return snapshots;
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.rfind("snap-", 0) != 0 || name.size() < 10 ||
        name.substr(name.size() - 5) != ".snap") {
      continue;
    }
    SnapshotInfo info;
    info.path = dir + "/" + name;
    try {
      SegmentReader reader(info.path);
      info.run_id = reader.info().run_id;
      info.seq = reader.info().seq;
      info.file_bytes = reader.info().file_bytes;
      if (reader.info().shard != kSnapshotShard) {
        info.error = "header shard field is not the snapshot sentinel";
      } else {
        while (reader.next()) {
        }
        if (reader.torn_tail()) {
          info.error = "torn record tail (snapshot file damaged)";
        } else {
          info.valid = true;
        }
      }
    } catch (const SerializationError& e) {
      info.error = e.what();
    }
    snapshots.push_back(std::move(info));
  }
  ::closedir(d);
  std::sort(snapshots.begin(), snapshots.end(),
            [](const SnapshotInfo& a, const SnapshotInfo& b) {
              if (a.seq != b.seq) return a.seq < b.seq;
              return a.path < b.path;
            });
  return snapshots;
}

std::vector<std::vector<std::uint8_t>> load_snapshot(const std::string& path) {
  SegmentReader reader(path);
  if (reader.info().shard != kSnapshotShard) {
    throw SerializationError("snapshot " + path +
                             ": header shard field is not the snapshot "
                             "sentinel");
  }
  std::vector<std::vector<std::uint8_t>> frames;
  while (auto record = reader.next()) {
    frames.emplace_back(record->begin(), record->end());
  }
  if (reader.torn_tail()) {
    throw SerializationError("snapshot " + path +
                             ": torn record tail (file damaged)");
  }
  return frames;
}

}  // namespace ustream::durability
