#include "durability/recovery.h"

#include <algorithm>

#include "obs/metrics.h"

namespace ustream::durability {

namespace {

obs::Counter& replayed_counter() {
  static obs::Counter& c = obs::default_registry().counter(
      "ustream_recovery_replayed_frames_total");
  return c;
}

// Replays one record through the CollectState acceptance path, updating
// `result`. The frame bytes are copied into the winner slot on acceptance.
void replay_record(CollectState& state, std::optional<PayloadKind> delta_kind,
                   std::span<const std::uint8_t> frame_bytes,
                   RecoveryResult& result) {
  // ingest() never throws: the frame either fails validation (quarantined —
  // a corrupt record that still sliced structurally) or loses replay
  // arbitration (duplicate/stale/resync — superseded by a frame already
  // replayed, possible when snapshots overlap segment tails). Callers diff
  // the report's counters to classify.
  auto accepted = state.ingest(frame_bytes);
  if (!accepted) return;
  auto& slot = result.sites[accepted->site];
  if (delta_kind.has_value() && accepted->kind == *delta_kind && slot.has_value()) {
    // ingest() only extends an intact chain, so the site's full frame is
    // already in the slot; the delta stacks on top of it in log order.
    slot->deltas.emplace_back(frame_bytes.begin(), frame_bytes.end());
    slot->epoch = accepted->epoch;
  } else {
    slot = RecoveredSite{accepted->epoch,
                         {frame_bytes.begin(), frame_bytes.end()},
                         {}};
  }
  result.frames_replayed += 1;
  replayed_counter().add(1);
}

}  // namespace

std::size_t RecoveryResult::sites_recovered() const noexcept {
  std::size_t n = 0;
  for (const auto& s : sites) {
    if (s.has_value()) ++n;
  }
  return n;
}

std::string RecoveryResult::summary() const {
  std::string s = "recovered " + std::to_string(sites_recovered()) + "/" +
                  std::to_string(sites.size()) + " sites from " +
                  std::to_string(frames_replayed) + " replayed frames";
  if (used_snapshot) {
    s += " (snapshot " + std::to_string(snapshot_seq) + " + " +
         std::to_string(segments_replayed) + " tail segments, " +
         std::to_string(segments_skipped) + " covered)";
  } else {
    s += " (" + std::to_string(segments_replayed) + " segments, no snapshot)";
  }
  if (torn_tails > 0) {
    s += "; " + std::to_string(torn_tails) + " torn tail(s), " +
         std::to_string(stranded_bytes) + " bytes stranded";
  }
  if (frames_corrupt > 0) {
    s += "; " + std::to_string(frames_corrupt) + " corrupt frame(s) dropped";
  }
  return s;
}

RecoveryResult recover_referee_state(const RecoveryOptions& options) {
  RecoveryResult result;
  result.sites.resize(options.sites);

  // One replay CollectState carries the dedup semantics for snapshot and
  // tail alike — the "same one-arbiter acceptance path" as live traffic.
  CollectState state(options.sites, options.expected_kind, options.dedup);
  if (options.delta_kind.has_value()) state.enable_deltas(*options.delta_kind);

  // Newest valid snapshot first; corrupt ones fall back to the previous.
  const auto snapshots = scan_snapshots(options.dir);
  for (const auto& snap : snapshots) {
    result.max_snapshot_seq = std::max(result.max_snapshot_seq, snap.seq);
  }
  std::uint32_t covered_below = 0;  // segments with watermark < this skip
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    if (!it->valid) continue;
    std::vector<std::vector<std::uint8_t>> frames;
    try {
      frames = load_snapshot(it->path);
    } catch (const SerializationError&) {
      continue;  // damaged after scan (races only in tests); fall back
    }
    for (const auto& frame : frames) {
      const auto quarantined_before = state.report().frames_quarantined;
      replay_record(state, options.delta_kind, frame, result);
      if (state.report().frames_quarantined > quarantined_before) {
        result.frames_corrupt += 1;
      }
    }
    result.used_snapshot = true;
    result.snapshot_seq = it->seq;
    result.run_id = it->run_id;
    covered_below = it->seq;
    break;
  }

  // Replay every segment the snapshot does not cover. Segments are sorted
  // (shard, seq); order across shards is irrelevant (see header comment).
  const auto segments = scan_wal_segments(options.dir);
  for (const auto& seg : segments) {
    result.max_segment_seq = std::max(result.max_segment_seq, seg.seq);
    if (!seg.header_valid) {
      // Unreadable header: nothing in this file can be trusted. Count and
      // move on — other shards' chains are independent.
      result.frames_corrupt += 1;
      continue;
    }
    if (!result.used_snapshot) result.run_id = seg.run_id;
    if (result.used_snapshot && seg.watermark < covered_below) {
      result.segments_skipped += 1;
      continue;
    }
    SegmentReader reader(seg.path);
    while (auto record = reader.next()) {
      const auto quarantined_before = state.report().frames_quarantined;
      // A delta whose chain was re-based by a later-replayed full frame is
      // superseded state, same as a stale snapshot — its resync counter
      // folds into the superseded classification.
      const auto super_before = state.report().duplicates_dropped +
                                state.report().stale_dropped +
                                state.report().resyncs;
      replay_record(state, options.delta_kind, *record, result);
      if (state.report().frames_quarantined > quarantined_before) {
        result.frames_corrupt += 1;
      } else if (state.report().duplicates_dropped +
                     state.report().stale_dropped +
                     state.report().resyncs > super_before) {
        result.frames_superseded += 1;
      }
    }
    if (reader.torn_tail()) {
      result.torn_tails += 1;
      result.stranded_bytes += reader.stranded_bytes();
    }
    result.segments_replayed += 1;
  }

  return result;
}

bool wal_dir_dirty(const std::string& dir) {
  return !scan_wal_segments(dir).empty() || !scan_snapshots(dir).empty();
}

DurableLog::DurableLog(Options options, std::size_t sites,
                       std::uint32_t shards, std::uint64_t run_id)
    : options_(std::move(options)), run_id_(run_id) {
  USTREAM_REQUIRE(!wal_dir_dirty(options_.dir),
                  "WAL dir '" + options_.dir +
                      "' already holds segments or snapshots; pass --recover "
                      "to resume that run or point --wal-dir at a clean "
                      "directory");
  recovered_.sites.resize(sites);
  winners_.resize(sites);
  open_writers(shards, /*start_seq=*/0, /*watermark=*/0);
}

DurableLog::DurableLog(Options options, std::size_t sites,
                       std::uint32_t shards, RecoveryResult recovered)
    : options_(std::move(options)),
      run_id_(recovered.run_id),
      recovered_(std::move(recovered)) {
  USTREAM_REQUIRE(recovered_.sites.size() == sites,
                  "recovered state has a different site count than serve");
  winners_ = recovered_.sites;
  next_snapshot_seq_ = recovered_.max_snapshot_seq + 1;
  // New segments start past every existing chain and are stamped covered
  // by nothing (watermark = last snapshot actually used, so they replay
  // on the next recovery even if newer corrupt snapshots exist).
  open_writers(shards, recovered_.max_segment_seq + 1,
               recovered_.used_snapshot ? recovered_.snapshot_seq : 0);
}

DurableLog::~DurableLog() {
  try {
    sync_all();
  } catch (...) {
    // Best effort on teardown; committed records are already durable.
  }
}

void DurableLog::open_writers(std::uint32_t shards, std::uint32_t start_seq,
                              std::uint32_t watermark) {
  writers_.reserve(shards);
  for (std::uint32_t shard = 0; shard < shards; ++shard) {
    WalConfig config;
    config.dir = options_.dir;
    config.run_id = run_id_;
    config.shard = shard;
    config.fsync = options_.fsync;
    config.fsync_interval = options_.fsync_interval;
    config.segment_bytes = options_.segment_bytes;
    writers_.push_back(
        std::make_unique<WalWriter>(std::move(config), start_seq, watermark));
  }
}

void DurableLog::log_accepted(std::uint32_t shard, std::uint32_t site,
                              std::uint32_t epoch,
                              std::span<const std::uint8_t> frame_bytes,
                              bool is_delta) {
  USTREAM_REQUIRE(shard < writers_.size(), "log_accepted: shard out of range");
  USTREAM_REQUIRE(site < winners_.size(), "log_accepted: site out of range");
  WalWriter& writer = *writers_[shard];
  writer.append(frame_bytes);
  writer.commit();
  if (is_delta) {
    USTREAM_REQUIRE(winners_[site].has_value(),
                    "delta logged for a site with no full frame on record");
    winners_[site]->deltas.emplace_back(frame_bytes.begin(), frame_bytes.end());
    winners_[site]->epoch = epoch;
  } else {
    winners_[site] = RecoveredSite{epoch,
                                   {frame_bytes.begin(), frame_bytes.end()},
                                   {}};
  }
  records_logged_ += 1;
  accepted_since_snapshot_ += 1;
  maybe_snapshot();
}

void DurableLog::maybe_snapshot() {
  if (options_.snapshot_every == 0 ||
      accepted_since_snapshot_ < options_.snapshot_every) {
    return;
  }
  std::vector<std::vector<std::uint8_t>> frames;
  frames.reserve(winners_.size());
  for (const auto& winner : winners_) {
    if (!winner.has_value()) continue;
    // Chain order matters: the full frame first, then its deltas, so a
    // snapshot replay rebuilds the chain through the same acceptance path.
    frames.push_back(winner->frame);
    for (const auto& delta : winner->deltas) frames.push_back(delta);
  }
  const std::uint32_t seq = next_snapshot_seq_++;
  write_snapshot(options_.dir, run_id_, seq, frames);
  // Rotate every writer into a fresh segment stamped with the new
  // watermark: everything logged so far is covered by snapshot `seq`.
  for (auto& writer : writers_) {
    writer->rotate(seq);
  }
  accepted_since_snapshot_ = 0;
  snapshots_written_ += 1;
}

void DurableLog::sync_all() {
  for (auto& writer : writers_) {
    writer->sync();
  }
}

std::uint64_t DurableLog::bytes_logged() const noexcept {
  std::uint64_t total = 0;
  for (const auto& writer : writers_) {
    total += writer->bytes_appended();
  }
  return total;
}

std::uint64_t DurableLog::fsyncs() const noexcept {
  std::uint64_t total = 0;
  for (const auto& writer : writers_) {
    total += writer->fsyncs();
  }
  return total;
}

}  // namespace ustream::durability
