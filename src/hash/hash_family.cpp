#include "hash/hash_family.h"

#include "common/error.h"

namespace ustream {

std::string to_string(HashKind kind) {
  switch (kind) {
    case HashKind::kPairwise: return "pairwise";
    case HashKind::kFourWise: return "4wise";
    case HashKind::kTabulation: return "tabulation";
    case HashKind::kMultiplyShift: return "multiply-shift";
    case HashKind::kMurmurMix: return "murmur";
  }
  return "unknown";
}

HashKind hash_kind_from_string(const std::string& name) {
  if (name == "pairwise") return HashKind::kPairwise;
  if (name == "4wise") return HashKind::kFourWise;
  if (name == "tabulation") return HashKind::kTabulation;
  if (name == "multiply-shift") return HashKind::kMultiplyShift;
  if (name == "murmur") return HashKind::kMurmurMix;
  throw InvalidArgument("unknown hash kind: " + name);
}

namespace {
auto make_impl(HashKind kind, std::uint64_t seed)
    -> std::variant<PairwiseHash, KWiseHash, TabulationHash, MultiplyShiftHash, MurmurMixHash> {
  switch (kind) {
    case HashKind::kPairwise: return PairwiseHash(seed);
    case HashKind::kFourWise: return KWiseHash(seed, 4);
    case HashKind::kTabulation: return TabulationHash(seed);
    case HashKind::kMultiplyShift: return MultiplyShiftHash(seed);
    case HashKind::kMurmurMix: return MurmurMixHash(seed);
  }
  throw InvalidArgument("unknown hash kind");
}
}  // namespace

AnyLabelHash::AnyLabelHash(HashKind kind, std::uint64_t seed)
    : kind_(kind), impl_(make_impl(kind, seed)) {}

std::uint64_t AnyLabelHash::value(std::uint64_t x) const noexcept {
  return std::visit([x](const auto& h) { return h(x); }, impl_);
}

int AnyLabelHash::bits() const noexcept {
  return std::visit([](const auto& h) { return std::remove_cvref_t<decltype(h)>::kBits; },
                    impl_);
}

}  // namespace ustream
