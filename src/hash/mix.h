// Full-avalanche 64-bit mixers (MurmurHash3 fmix64 and a xxHash-style
// variant). These have no independence *guarantee*; baselines that were
// published assuming idealized hashing (Flajolet-Martin PCSA, HyperLogLog)
// use them, which is faithful to how those sketches are deployed.
#pragma once

#include <cstdint>

namespace ustream {

// MurmurHash3 64-bit finalizer (Appleby). Bijective on 64-bit words.
constexpr std::uint64_t murmur_mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// xxHash3-style avalanche. Bijective on 64-bit words.
constexpr std::uint64_t xx_mix64(std::uint64_t x) noexcept {
  x ^= x >> 37;
  x *= 0x165667919e3779f9ULL;
  x ^= x >> 32;
  return x;
}

// Seeded variant: mixes the seed in before and after for cheap keying.
constexpr std::uint64_t murmur_mix64_seeded(std::uint64_t x, std::uint64_t seed) noexcept {
  return murmur_mix64(x ^ seed) ^ (seed * 0x9e3779b97f4a7c15ULL);
}

}  // namespace ustream
