#include "hash/pairwise.h"

// PairwiseHash is fully inline; this TU exists so the target has a home for
// the class should out-of-line members be added, and to anchor the vtable-
// free type in one object file for build hygiene.
namespace ustream {
static_assert(PairwiseHash::kBits == 61);
}  // namespace ustream
