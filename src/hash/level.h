// Geometric level extraction — the heart of coordinated sampling.
//
// For a hash value v uniform on [0, 2^bits), define
//   level(v) = number of trailing zero bits of v,  capped at bits.
// Then Pr[level(v) >= l] = 2^-l: each label independently "survives" to
// level l with probability 2^-l, and crucially the coin flips are a
// deterministic function of the SHARED hash, so every party in the
// distributed model makes the same decision about the same label. That is
// what makes samples from different streams compose into a sample of the
// union (coordinated sampling, Gibbons-Tirthapura SPAA'01).
#pragma once

#include <cstdint>

#include "common/bits.h"

namespace ustream {

// Level of a single hash value with `bits` uniform bits.
constexpr int hash_level(std::uint64_t v, int bits) noexcept {
  const int tz = trailing_zeros(v, bits);
  return tz > bits ? bits : tz;
}

// Convenience functor binding a hash family to level extraction.
// H must expose `static constexpr int kBits` and `uint64_t operator()(uint64_t)`.
template <typename H>
class LevelFunction {
 public:
  explicit LevelFunction(H hash) noexcept : hash_(static_cast<H&&>(hash)) {}

  int operator()(std::uint64_t label) const noexcept {
    return hash_level(hash_(label), H::kBits);
  }

  const H& hash() const noexcept { return hash_; }
  static constexpr int max_level() noexcept { return H::kBits; }

 private:
  H hash_;
};

}  // namespace ustream
