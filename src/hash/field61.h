// Arithmetic over the Mersenne prime field GF(p), p = 2^61 - 1.
//
// All hash families with exact independence guarantees in this library
// (pairwise CW, k-wise polynomial) are polynomials over this field: the
// Mersenne structure turns `mod p` into shift/add, so a field multiply is
// one 64x64->128 multiply plus two folds.
#pragma once

#include <cstdint>

namespace ustream::field61 {

inline constexpr std::uint64_t kPrime = (std::uint64_t{1} << 61) - 1;

// Reduce a value < 2^122 + 2^61 (i.e. any product a*b + c with a,b,c < p)
// to the canonical range [0, p).
constexpr std::uint64_t reduce(unsigned __int128 v) noexcept {
  // First fold: v = lo + hi where v = hi*2^61 + lo and 2^61 == 1 (mod p).
  std::uint64_t r =
      static_cast<std::uint64_t>(v & kPrime) + static_cast<std::uint64_t>(v >> 61);
  // After one fold r < 2^62 + 2^61; fold once more.
  r = (r & kPrime) + (r >> 61);
  if (r >= kPrime) r -= kPrime;
  return r;
}

// (a * b) mod p for a, b < p.
constexpr std::uint64_t mul(std::uint64_t a, std::uint64_t b) noexcept {
  return reduce(static_cast<unsigned __int128>(a) * b);
}

// (a + b) mod p for a, b < p.
constexpr std::uint64_t add(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t r = a + b;
  if (r >= kPrime) r -= kPrime;
  return r;
}

// (a * b + c) mod p for a, b, c < p.
constexpr std::uint64_t mul_add(std::uint64_t a, std::uint64_t b, std::uint64_t c) noexcept {
  return reduce(static_cast<unsigned __int128>(a) * b + c);
}

// Canonicalize an arbitrary 64-bit word into [0, p).
constexpr std::uint64_t canon(std::uint64_t v) noexcept {
  v = (v & kPrime) + (v >> 61);
  if (v >= kPrime) v -= kPrime;
  return v;
}

}  // namespace ustream::field61
