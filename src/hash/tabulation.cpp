#include "hash/tabulation.h"

namespace ustream {
static_assert(TabulationHash::kBits == 64);
}  // namespace ustream
