// Runtime-selectable hash family for experiments that sweep hash kinds
// (E9). The core sampler is templated on the hash type for zero-overhead
// dispatch; AnyLabelHash is the type-erased version used by harness code
// where a runtime switch is more convenient than template instantiation.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "hash/kwise.h"
#include "hash/mix.h"
#include "hash/multiply_shift.h"
#include "hash/pairwise.h"
#include "hash/tabulation.h"

namespace ustream {

enum class HashKind {
  kPairwise,       // CW a*x+b over GF(2^61-1): the paper's assumption
  kFourWise,       // degree-3 polynomial over the same field
  kTabulation,     // simple tabulation
  kMultiplyShift,  // cheap universal; weak low bits (negative control)
  kMurmurMix,      // full-avalanche mixer; "idealized hashing" stand-in
};

std::string to_string(HashKind kind);
HashKind hash_kind_from_string(const std::string& name);

// Seeded murmur mixer packaged with the hash-family interface.
class MurmurMixHash {
 public:
  static constexpr int kBits = 64;
  explicit MurmurMixHash(std::uint64_t seed) noexcept : seed_(seed) {}
  std::uint64_t operator()(std::uint64_t x) const noexcept {
    return murmur_mix64_seeded(x, seed_);
  }

 private:
  std::uint64_t seed_;
};

// Type-erased label hash: value + usable bit width.
class AnyLabelHash {
 public:
  AnyLabelHash(HashKind kind, std::uint64_t seed);

  std::uint64_t value(std::uint64_t x) const noexcept;
  int bits() const noexcept;
  HashKind kind() const noexcept { return kind_; }

 private:
  HashKind kind_;
  std::variant<PairwiseHash, KWiseHash, TabulationHash, MultiplyShiftHash, MurmurMixHash> impl_;
};

}  // namespace ustream
