// k-wise independent hashing: degree-(k-1) polynomial over GF(2^61 - 1).
//
// The core sampler only needs k = 2 (PairwiseHash), but higher independence
// is useful for (a) statistical tests that separate hash quality from
// estimator behaviour and (b) the 4-wise hashing some baselines (AMS-style
// moment estimators) traditionally use.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.h"
#include "common/random.h"
#include "hash/field61.h"

namespace ustream {

class KWiseHash {
 public:
  static constexpr int kBits = 61;

  KWiseHash(std::uint64_t seed, unsigned k) : coeffs_(k) {
    USTREAM_REQUIRE(k >= 1, "KWiseHash needs k >= 1");
    SplitMix64 sm(seed);
    for (auto& c : coeffs_) c = field61::canon(sm.next());
    // Leading coefficient nonzero so the polynomial has full degree.
    while (coeffs_.back() == 0) coeffs_.back() = field61::canon(sm.next());
  }

  std::uint64_t operator()(std::uint64_t x) const noexcept {
    const std::uint64_t xc = field61::canon(x);
    std::uint64_t acc = 0;
    // Horner evaluation, highest degree first.
    for (auto it = coeffs_.rbegin(); it != coeffs_.rend(); ++it) {
      acc = field61::mul_add(acc, xc, *it);
    }
    return acc;
  }

  unsigned independence() const noexcept { return static_cast<unsigned>(coeffs_.size()); }

 private:
  std::vector<std::uint64_t> coeffs_;  // c0 + c1 x + ... + c_{k-1} x^{k-1}
};

}  // namespace ustream
