// Pairwise-independent (2-universal, in fact 2-wise independent) hash
// family h(x) = a*x + b over GF(2^61 - 1), after Carter & Wegman.
//
// This is exactly the independence assumption the paper's analysis needs:
// the variance bound for the coordinated sample's per-level estimator uses
// only pairwise independence of the indicator variables "label x reaches
// level l". No idealized hashing is assumed anywhere in the core library.
#pragma once

#include <cstdint>

#include "common/random.h"
#include "hash/field61.h"

namespace ustream {

class PairwiseHash {
 public:
  // Number of uniform output bits. Values are uniform on [0, p) with
  // p = 2^61 - 1, i.e. effectively 61 bits (the single missing value
  // 2^61 - 1 biases trailing-zero probabilities by < 2^-60).
  static constexpr int kBits = 61;

  // Draws (a, b) from the seed; a != 0 so the map is a bijection on the field.
  explicit PairwiseHash(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    do {
      a_ = field61::canon(sm.next());
    } while (a_ == 0);
    b_ = field61::canon(sm.next());
  }

  std::uint64_t operator()(std::uint64_t x) const noexcept {
    return field61::mul_add(a_, field61::canon(x), b_);
  }

  std::uint64_t a() const noexcept { return a_; }
  std::uint64_t b() const noexcept { return b_; }

 private:
  std::uint64_t a_;
  std::uint64_t b_;
};

}  // namespace ustream
