// SIMD block kernel for the pairwise field-61 hash.
//
// h(x) = a * canon(x) + b mod p, p = 2^61 - 1, eight lanes per vector.
// The 61x61-bit product is assembled from four 32x32->64 multiplies
// (VPMULUDQ); the Mersenne reduction is the same fold-twice-then-subtract
// sequence as field61::reduce. Every step lands on the canonical
// representative in [0, p), so the vector kernel's output is bit-identical
// to the scalar field61::mul_add — which is what lets the batched sampler
// path keep its "same state as scalar ingestion" guarantee.
//
// Dispatch is at runtime (one cached __builtin_cpu_supports probe): the
// library still builds and runs on generic x86-64 and non-x86 hosts, it
// just takes the scalar loop there.
#include "hash/batch.h"

#include "hash/field61.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define USTREAM_HAS_X86_DISPATCH 1
#include <immintrin.h>
#else
#define USTREAM_HAS_X86_DISPATCH 0
#endif

namespace ustream {
namespace {

std::uint64_t hash_block_scalar(std::uint64_t a, std::uint64_t b,
                                const std::uint64_t* labels, std::uint64_t* out,
                                std::size_t n, std::uint64_t reject_mask) noexcept {
  std::uint64_t survivors = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint64_t h = field61::mul_add(a, field61::canon(labels[j]), b);
    out[j] = h;
    survivors |= static_cast<std::uint64_t>((h & reject_mask) == 0) << j;
  }
  return survivors;
}

#if USTREAM_HAS_X86_DISPATCH
#if !defined(__clang__)
// GCC's unmasked AVX-512 intrinsics pass _mm512_undefined_epi32() as the
// merge operand, which trips -Wmaybe-uninitialized when they inline here
// (GCC PR105593). The value is never read; silence the false positive.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
__attribute__((target("avx512f"))) std::uint64_t hash_block_avx512(
    std::uint64_t a, std::uint64_t b, const std::uint64_t* labels,
    std::uint64_t* out, std::size_t n, std::uint64_t reject_mask) noexcept {
  const __m512i vp = _mm512_set1_epi64(static_cast<long long>(field61::kPrime));
  const __m512i vlow32 = _mm512_set1_epi64(0xffffffffLL);
  const __m512i va_lo = _mm512_set1_epi64(static_cast<long long>(a & 0xffffffffu));
  const __m512i va_hi = _mm512_set1_epi64(static_cast<long long>(a >> 32));
  const __m512i vb = _mm512_set1_epi64(static_cast<long long>(b));
  const __m512i vone = _mm512_set1_epi64(1);
  const __m512i vreject = _mm512_set1_epi64(static_cast<long long>(reject_mask));
  std::uint64_t survivors = 0;
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512i x = _mm512_loadu_si512(labels + j);
    // t = canon(x): fold the top 3 bits in, subtract p once if needed. The
    // min trick replaces the branch: t - p wraps above 2^63 when t < p.
    __m512i t = _mm512_add_epi64(_mm512_and_si512(x, vp), _mm512_srli_epi64(x, 61));
    t = _mm512_min_epu64(t, _mm512_sub_epi64(t, vp));
    // a * t as a 128-bit (hi, lo) pair from 32-bit limbs. With a, t < 2^61
    // the cross terms are < 2^61 each, so mid = p1 + p2 cannot overflow.
    const __m512i t_lo = _mm512_and_si512(t, vlow32);
    const __m512i t_hi = _mm512_srli_epi64(t, 32);
    const __m512i p0 = _mm512_mul_epu32(va_lo, t_lo);
    const __m512i p1 = _mm512_mul_epu32(va_lo, t_hi);
    const __m512i p2 = _mm512_mul_epu32(va_hi, t_lo);
    const __m512i p3 = _mm512_mul_epu32(va_hi, t_hi);
    const __m512i mid = _mm512_add_epi64(p1, p2);
    const __m512i lo = _mm512_add_epi64(p0, _mm512_slli_epi64(mid, 32));
    const __mmask8 carry = _mm512_cmplt_epu64_mask(lo, p0);
    __m512i hi = _mm512_add_epi64(p3, _mm512_srli_epi64(mid, 32));
    hi = _mm512_mask_add_epi64(hi, carry, hi, vone);
    // (a*t + b) mod p: fold (v & p) + (v >> 61) with v = hi:lo (hi < 2^58,
    // so v >> 61 = lo >> 61 | hi << 3), add b, fold once more, subtract.
    __m512i r = _mm512_add_epi64(
        _mm512_and_si512(lo, vp),
        _mm512_or_si512(_mm512_srli_epi64(lo, 61), _mm512_slli_epi64(hi, 3)));
    r = _mm512_add_epi64(r, vb);  // < 3 * 2^61, still folds in one step
    r = _mm512_add_epi64(_mm512_and_si512(r, vp), _mm512_srli_epi64(r, 61));
    r = _mm512_min_epu64(r, _mm512_sub_epi64(r, vp));
    _mm512_storeu_si512(out + j, r);
    const __mmask8 alive = _mm512_testn_epi64_mask(r, vreject);
    survivors |= static_cast<std::uint64_t>(alive) << j;
  }
  // Sub-vector tail (at most 7 labels, only on a batch's final block).
  if (j < n) {
    survivors |= hash_block_scalar(a, b, labels + j, out + j, n - j, reject_mask) << j;
  }
  return survivors;
}
#if !defined(__clang__)
#pragma GCC diagnostic pop
#endif
#endif  // USTREAM_HAS_X86_DISPATCH

}  // namespace

std::uint64_t hash_block(const PairwiseHash& hash, const std::uint64_t* labels,
                         std::uint64_t* out, std::size_t n,
                         std::uint64_t reject_mask) noexcept {
#if USTREAM_HAS_X86_DISPATCH
  static const bool kHasAvx512 = __builtin_cpu_supports("avx512f") > 0;
  if (kHasAvx512) {
    return hash_block_avx512(hash.a(), hash.b(), labels, out, n, reject_mask);
  }
#endif
  return hash_block_scalar(hash.a(), hash.b(), labels, out, n, reject_mask);
}

}  // namespace ustream
