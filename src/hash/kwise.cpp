#include "hash/kwise.h"

namespace ustream {
static_assert(KWiseHash::kBits == 61);
}  // namespace ustream
