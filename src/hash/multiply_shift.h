// Dietzfelbinger multiply-shift hashing.
//
// The cheapest family in the library: one multiply and one add. Universal
// for bucket assignment via the HIGH bits, but its LOW bits are famously
// poor — trailing-zero level extraction from a multiply-shift value is
// biased. This is a deliberate ablation point (E9): plugging MultiplyShift
// into the coordinated sampler demonstrates why the paper insists on a
// pairwise-independent family rather than "any universal hash".
#pragma once

#include <cstdint>

#include "common/random.h"

namespace ustream {

class MultiplyShiftHash {
 public:
  static constexpr int kBits = 64;

  explicit MultiplyShiftHash(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    a_ = sm.next() | 1;  // odd multiplier
    b_ = sm.next();
  }

  std::uint64_t operator()(std::uint64_t x) const noexcept { return a_ * x + b_; }

 private:
  std::uint64_t a_;
  std::uint64_t b_;
};

}  // namespace ustream
