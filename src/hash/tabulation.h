// Simple tabulation hashing (Zobrist / Patrascu-Thorup).
//
// 3-wise independent in the classical sense, but known to behave like a
// fully random function for many algorithms (including distinct-element
// estimation). Included as an ablation point for E9: faster per-lookup
// tail behaviour than field arithmetic on some machines, stronger in
// practice than its formal independence suggests.
#pragma once

#include <array>
#include <cstdint>

#include "common/random.h"

namespace ustream {

class TabulationHash {
 public:
  static constexpr int kBits = 64;

  explicit TabulationHash(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& table : tables_) {
      for (auto& entry : table) entry = sm.next();
    }
  }

  std::uint64_t operator()(std::uint64_t x) const noexcept {
    std::uint64_t h = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      h ^= tables_[i][(x >> (8 * i)) & 0xff];
    }
    return h;
  }

 private:
  std::array<std::array<std::uint64_t, 256>, 8> tables_;
};

}  // namespace ustream
