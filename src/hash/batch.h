// Block hashing for the batched ingestion path (CoordinatedSampler::
// add_batch and friends): hash up to 64 labels into a caller-provided
// buffer and report which of them survive the threshold-form rejection
// test `(h & reject_mask) == 0` as a bitmask.
//
// Returning the survivor set as a bitmask (instead of letting the caller
// re-scan the hash buffer) matters in the saturated regime: when the
// sampler's level is high, almost every block returns 0 and the caller
// touches no per-item state at all.
#pragma once

#include <cstddef>
#include <cstdint>

#include "hash/pairwise.h"

namespace ustream {

// Hashes labels[0..n) into out[0..n) (requires n <= 64) and returns the
// bitmask whose bit j is set iff (out[j] & reject_mask) == 0, i.e. label j
// survives the sampling threshold encoded by reject_mask.
template <typename H>
inline std::uint64_t hash_block(const H& hash, const std::uint64_t* labels,
                                std::uint64_t* out, std::size_t n,
                                std::uint64_t reject_mask) noexcept {
  std::uint64_t survivors = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint64_t h = hash(labels[j]);
    out[j] = h;
    survivors |= static_cast<std::uint64_t>((h & reject_mask) == 0) << j;
  }
  return survivors;
}

// PairwiseHash overload: runtime-dispatches to an 8-lane AVX-512 kernel on
// x86-64 parts that have it (scalar fallback otherwise). The vector kernel
// reduces to the same canonical GF(2^61 - 1) representative as
// field61::mul_add, so the hashes — and therefore all sampler state built
// from them — are bit-identical to the scalar path.
std::uint64_t hash_block(const PairwiseHash& hash, const std::uint64_t* labels,
                         std::uint64_t* out, std::size_t n,
                         std::uint64_t reject_mask) noexcept;

}  // namespace ustream
