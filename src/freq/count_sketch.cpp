#include "freq/count_sketch.h"

#include <algorithm>

#include "hash/batch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ustream {

CountSketch::CountSketch(std::size_t depth, std::size_t width_log2, std::uint64_t seed)
    : hash_(seed),
      seed_(seed),
      depth_(depth),
      width_log2_(width_log2),
      bucket_mask_((std::uint64_t{1} << width_log2) - 1),
      counters_(depth << width_log2, 0) {
  USTREAM_REQUIRE(depth >= 1 && depth <= kMaxDepth, "count-sketch depth out of range");
  USTREAM_REQUIRE(width_log2 >= 1 && width_log2 <= kMaxWidthLog2,
                  "count-sketch width out of range");
  // Every row needs width_log2 bucket bits plus one sign bit from the one
  // shared 61-bit hash value (see header comment).
  USTREAM_REQUIRE(depth * (width_log2 + 1) <= static_cast<std::size_t>(PairwiseHash::kBits),
                  "count-sketch shape exceeds the shared hash's bit budget");
}

void CountSketch::apply(std::uint64_t h, std::int64_t delta) noexcept {
  for (std::size_t r = 0; r < depth_; ++r) {
    const std::uint64_t field = h >> (r * (width_log2_ + 1));
    const std::size_t bucket = static_cast<std::size_t>(field & bucket_mask_);
    const std::int64_t signed_delta = (field >> width_log2_) & 1 ? delta : -delta;
    counters_[(r << width_log2_) + bucket] += signed_delta;
  }
}

void CountSketch::update(std::uint64_t label, std::int64_t delta) {
  ++items_;
  apply(hash_(label), delta);
}

void CountSketch::add_batch(std::span<const std::uint64_t> labels) {
  USTREAM_COUNTER_ADD("ustream_freq_batch_items_total", labels.size());
  items_ += labels.size();
  std::uint64_t h[kBatchBlock];
  for (std::size_t i = 0; i < labels.size(); i += kBatchBlock) {
    const std::size_t n = std::min(kBatchBlock, labels.size() - i);
    // reject_mask 0: every label survives; we only want the hashes.
    hash_block(hash_, labels.data() + i, h, n, /*reject_mask=*/0);
    for (std::size_t j = 0; j < n; ++j) apply(h[j], 1);
  }
}

std::int64_t CountSketch::estimate(std::uint64_t label) const {
  const std::uint64_t h = hash_(label);
  std::int64_t row[kMaxDepth] = {};
  for (std::size_t r = 0; r < depth_; ++r) {
    const std::uint64_t field = h >> (r * (width_log2_ + 1));
    const std::size_t bucket = static_cast<std::size_t>(field & bucket_mask_);
    const std::int64_t counter = counters_[(r << width_log2_) + bucket];
    row[r] = (field >> width_log2_) & 1 ? counter : -counter;
  }
  std::sort(row, row + depth_);
  return depth_ % 2 == 1 ? row[depth_ / 2]
                         : (row[depth_ / 2 - 1] + row[depth_ / 2]) / 2;
}

double CountSketch::l2_squared() const {
  double row[kMaxDepth] = {};
  for (std::size_t r = 0; r < depth_; ++r) {
    double sum = 0.0;
    const std::int64_t* base = counters_.data() + (r << width_log2_);
    const std::size_t w = width();
    for (std::size_t b = 0; b < w; ++b) {
      sum += static_cast<double>(base[b]) * static_cast<double>(base[b]);
    }
    row[r] = sum;
  }
  std::sort(row, row + depth_);
  return depth_ % 2 == 1 ? row[depth_ / 2]
                         : (row[depth_ / 2 - 1] + row[depth_ / 2]) / 2.0;
}

void CountSketch::merge(const CountSketch& other) {
  USTREAM_REQUIRE(can_merge_with(other),
                  "merge requires count sketches with identical seed and shape");
  USTREAM_TRACE_SPAN("ustream_freq_merge_ns");
  for (std::size_t i = 0; i < counters_.size(); ++i) counters_[i] += other.counters_[i];
  items_ += other.items_;
}

void CountSketch::serialize(ByteWriter& w) const {
  w.u8(kWireVersion);
  w.u64(seed_);
  w.u8(static_cast<std::uint8_t>(depth_));
  w.u8(static_cast<std::uint8_t>(width_log2_));
  w.varint(items_);
  for (const std::int64_t c : counters_) w.svarint(c);
}

std::vector<std::uint8_t> CountSketch::serialize() const {
  ByteWriter w(16 + counters_.size() * 2);
  serialize(w);
  return w.take();
}

CountSketch CountSketch::deserialize(ByteReader& r) {
  if (r.u8() != kWireVersion) throw SerializationError("bad count-sketch version");
  const std::uint64_t seed = r.u64();
  const std::size_t depth = r.u8();
  const std::size_t width_log2 = r.u8();
  if (depth < 1 || depth > kMaxDepth || width_log2 < 1 || width_log2 > kMaxWidthLog2 ||
      depth * (width_log2 + 1) > static_cast<std::size_t>(PairwiseHash::kBits)) {
    throw SerializationError("count-sketch shape out of range");
  }
  CountSketch s(depth, width_log2, seed);
  s.items_ = r.varint();
  for (std::size_t i = 0; i < s.counters_.size(); ++i) s.counters_[i] = r.svarint();
  return s;
}

CountSketch CountSketch::deserialize(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  auto s = deserialize(r);
  if (!r.done()) throw SerializationError("trailing bytes after count-sketch");
  return s;
}

}  // namespace ustream
