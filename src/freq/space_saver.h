// SpaceSaver — the Metwally–Agrawal–El Abbadi top-k summary, in the
// interval form that makes its merge EXACTLY associative (Agarwal et al.,
// "Mergeable Summaries").
//
// State: up to `capacity` tracked entries {label, count, error} plus one
// scalar `absent_bound` m. Invariants (checked by property tests):
//   * for a tracked label x:   count(x) - error(x) <= f(x) <= count(x)
//   * for an untracked label:                         f(x) <= m
//   * m <= min tracked count; m only grows (to the evicted entry's count).
//
// Ingest is the classic algorithm restated against m: a hit increments its
// counter; a miss inserts {m + w, m}; when that overflows capacity, the
// minimum entry (by (count, label) — the tie-break is part of the wire
// contract) is evicted and m rises to its count. The min lives at the root
// of an indexed binary heap, so a hit costs one map probe plus an O(log
// capacity) sift and an eviction is O(log capacity) — no linear scans on
// the ingest path.
//
// Merge does NOT truncate: the entry set is the union, each label's
// interval is the sum of its per-summary intervals (an absent summary
// contributes [0, m_i]), and the bounds add: count = sum of upper bounds,
// error = count - sum of lower bounds, m = sum of m_i. Interval sums and
// scalar sums are associative and commutative, so any merge tree over the
// same multiset of summaries yields the same state — serialized bytes
// included (entries are written label-sorted) — which is what lets the
// referee's MergeEngine tree-reduce freq payloads byte-identically to the
// sequential site-order fold. The union summary holds at most
// sites x capacity entries; top(k) truncates at query time.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/dense_map.h"
#include "common/error.h"
#include "common/serialize.h"

namespace ustream {

class SpaceSaver {
 public:
  struct Entry {
    std::uint64_t label = 0;
    std::uint64_t count = 0;  // upper bound on the label's frequency
    std::uint64_t error = 0;  // count - error is the matching lower bound
  };

  explicit SpaceSaver(std::size_t capacity);

  void add(std::uint64_t label, std::uint64_t weight = 1);

  // Frequency interval for one label: tracked labels report their entry,
  // untracked labels report [0, absent_bound].
  struct Bound {
    std::uint64_t upper = 0;
    std::uint64_t lower = 0;
  };
  Bound estimate(std::uint64_t label) const noexcept;

  // The k entries with the largest counts, ordered by (count desc, label
  // asc) — the deterministic order every report in this repo uses.
  std::vector<Entry> top(std::size_t k) const;

  // Entries with a GUARANTEED frequency >= threshold (lower bound test).
  std::vector<Entry> guaranteed_at_least(std::uint64_t threshold) const;

  std::uint64_t absent_bound() const noexcept { return absent_bound_; }
  std::uint64_t total_weight() const noexcept { return total_; }
  std::size_t size() const noexcept { return slots_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  bool contains(std::uint64_t label) const noexcept;
  std::size_t bytes_used() const noexcept;

  bool can_merge_with(const SpaceSaver& other) const noexcept {
    return capacity_ == other.capacity_;
  }
  void merge(const SpaceSaver& other);

  void serialize(ByteWriter& w) const;
  std::vector<std::uint8_t> serialize() const;
  static SpaceSaver deserialize(ByteReader& r);
  static SpaceSaver deserialize(std::span<const std::uint8_t> bytes);

 private:
  static constexpr std::uint8_t kWireVersion = 1;

  // Eviction order: smallest (count, label) first.
  bool heap_less(std::uint32_t a, std::uint32_t b) const noexcept {
    const Entry& ea = slots_[a];
    const Entry& eb = slots_[b];
    if (ea.count != eb.count) return ea.count < eb.count;
    return ea.label < eb.label;
  }
  void sift_up(std::size_t heap_index) noexcept;
  void sift_down(std::size_t heap_index) noexcept;
  void heap_swap(std::size_t i, std::size_t j) noexcept;
  void rebuild_heap();
  void evict_min();
  // Stale index entries (left behind by slot-reusing evictions) are
  // reclaimed in bulk once the index outgrows the live set 8:1.
  void maybe_compact_index();
  Entry* find_slot(std::uint64_t label) noexcept;
  const Entry* find_slot(std::uint64_t label) const noexcept {
    return const_cast<SpaceSaver*>(this)->find_slot(label);
  }
  void index_put(std::uint64_t label, std::uint32_t slot);

  std::size_t capacity_;
  std::uint64_t absent_bound_ = 0;
  std::uint64_t total_ = 0;
  std::vector<Entry> slots_;          // dense entry storage
  std::vector<std::uint32_t> heap_;   // slot ids, min-(count,label) at root
  std::vector<std::uint32_t> pos_;    // slot id -> heap index
  DenseMap<std::uint32_t> index_;     // label -> slot id (may hold stale rows)
};

}  // namespace ustream
