// UniversalSketch — layered frequency substreams for G-sum estimation
// (Braverman–Chestnut; the layout confluo ships in production). One
// pairwise sampling hash g assigns each label a geometric level
// tz(g(label)); the level-j substream contains the labels with level >= j,
// so each layer halves the expected distinct support. Every layer carries
// its own FreqSketch (count-sketch + space-saver over the SAME labels the
// layer sees), and a G-sum
//     G = sum_x g(f(x))        for non-negative g
// is recovered bottom-up by the standard recursion
//     Y_top = sum over top-layer heavy hitters of g(est)
//     Y_j   = 2 * Y_{j+1} + sum over layer-j heavy hitters of
//             (+g(est) if the hitter does NOT survive to layer j+1,
//              -g(est) if it does)
// which debiases the doubling by the hitters already counted upstream.
//
// The sampling hash is derived from the root seed, so all sites carve out
// IDENTICAL level sets — layer j at site A and layer j at site B summarize
// the same slice of the label space, and the componentwise merge yields
// the universal sketch of the union stream. Merge is associative and
// commutative layer by layer; serialized bytes are merge-tree invariant.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "freq/freq_sketch.h"
#include "hash/pairwise.h"

namespace ustream {

struct UniversalConfig {
  std::size_t levels = 8;          // number of layered substreams
  std::size_t depth = 4;           // per-layer count-sketch rows
  std::size_t width_log2 = 10;     // per-layer log2 counters per row
  std::size_t heavy_capacity = 32; // per-layer space-saver entries
  std::uint64_t seed = 0;
};

class UniversalSketch {
 public:
  static constexpr std::size_t kMaxLevels = 16;

  explicit UniversalSketch(const UniversalConfig& config = {});

  void add(std::uint64_t label);
  void add_batch(std::span<const std::uint64_t> labels);

  // G-sum estimates (clamped to >= 0).
  double f1() const noexcept;      // exact: total weight at layer 0
  double f2() const;               // recursion with g(x) = x^2
  double entropy() const;          // Shannon entropy in bits via g(x) = x*log2(x)

  // Heavy hitters over the full stream = layer 0's view.
  std::vector<FreqSketch::HeavyHitter> heavy_hitters(std::size_t k) const {
    return layers_[0].top(k);
  }
  std::uint64_t estimate(std::uint64_t label) const {
    return layers_[0].estimate(label);
  }

  std::uint64_t items_processed() const noexcept {
    return layers_[0].items_processed();
  }
  std::size_t levels() const noexcept { return layers_.size(); }
  const FreqSketch& layer(std::size_t j) const { return layers_[j]; }
  const UniversalConfig& config() const noexcept { return config_; }
  std::size_t bytes_used() const noexcept;

  bool can_merge_with(const UniversalSketch& other) const noexcept;
  void merge(const UniversalSketch& other);

  void serialize(ByteWriter& w) const;
  std::vector<std::uint8_t> serialize() const;
  static UniversalSketch deserialize(ByteReader& r);
  static UniversalSketch deserialize(std::span<const std::uint8_t> bytes);

 private:
  static constexpr std::uint8_t kWireVersion = 1;
  static constexpr std::size_t kBatchBlock = 64;

  // Highest layer the label belongs to (0-based, capped at levels-1).
  std::size_t level_of(std::uint64_t label) const noexcept;

  // The recursion above for an arbitrary g; g must map 0 to 0.
  double g_sum(double (*g)(double)) const;

  UniversalConfig config_;
  PairwiseHash sample_hash_;  // g: decides layer membership
  std::vector<FreqSketch> layers_;
};

}  // namespace ustream
