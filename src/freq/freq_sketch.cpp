#include "freq/freq_sketch.h"

#include <algorithm>
#include <utility>

namespace ustream {

FreqSketch::FreqSketch(const FreqConfig& config)
    : config_(config),
      sketch_(config.depth, config.width_log2, config.seed),
      heavy_(config.heavy_capacity) {}

FreqSketch::FreqSketch(const FreqConfig& config, CountSketch&& sketch, SpaceSaver&& heavy)
    : config_(config), sketch_(std::move(sketch)), heavy_(std::move(heavy)) {}

void FreqSketch::add(std::uint64_t label) {
  sketch_.add(label);
  heavy_.add(label);
}

void FreqSketch::add_batch(std::span<const std::uint64_t> labels) {
  sketch_.add_batch(labels);  // SIMD hash_block path
  for (const std::uint64_t label : labels) heavy_.add(label);
}

std::uint64_t FreqSketch::estimate(std::uint64_t label) const {
  const SpaceSaver::Bound b = heavy_.estimate(label);
  const std::int64_t raw = sketch_.estimate(label);
  const std::uint64_t unsigned_raw = raw < 0 ? 0 : static_cast<std::uint64_t>(raw);
  return std::clamp(unsigned_raw, b.lower, b.upper);
}

std::vector<FreqSketch::HeavyHitter> FreqSketch::top(std::size_t k) const {
  std::vector<HeavyHitter> out;
  const auto entries = heavy_.top(k);
  out.reserve(entries.size());
  for (const SpaceSaver::Entry& e : entries) {
    const std::int64_t raw = sketch_.estimate(e.label);
    const std::uint64_t unsigned_raw = raw < 0 ? 0 : static_cast<std::uint64_t>(raw);
    out.push_back(HeavyHitter{e.label, e.count, e.count - e.error,
                              std::clamp(unsigned_raw, e.count - e.error, e.count)});
  }
  return out;
}

void FreqSketch::merge(const FreqSketch& other) {
  USTREAM_REQUIRE(can_merge_with(other),
                  "merge requires freq sketches with identical configuration");
  sketch_.merge(other.sketch_);
  heavy_.merge(other.heavy_);
}

void FreqSketch::serialize(ByteWriter& w) const {
  w.u8(kWireVersion);
  sketch_.serialize(w);
  heavy_.serialize(w);
}

std::vector<std::uint8_t> FreqSketch::serialize() const {
  ByteWriter w(64 + sketch_.width() * sketch_.depth() + heavy_.size() * 12);
  serialize(w);
  return w.take();
}

FreqSketch FreqSketch::deserialize(ByteReader& r) {
  if (r.u8() != kWireVersion) throw SerializationError("bad freq-sketch version");
  CountSketch sketch = CountSketch::deserialize(r);
  SpaceSaver heavy = SpaceSaver::deserialize(r);
  FreqConfig config;
  config.depth = sketch.depth();
  config.width_log2 = sketch.width_log2();
  config.heavy_capacity = heavy.capacity();
  config.seed = sketch.seed();
  return FreqSketch(config, std::move(sketch), std::move(heavy));
}

FreqSketch FreqSketch::deserialize(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  auto s = deserialize(r);
  if (!r.done()) throw SerializationError("trailing bytes after freq-sketch");
  return s;
}

}  // namespace ustream
