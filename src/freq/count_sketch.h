// CountSketch — signed frequency counters (Charikar–Chen–Farach-Colton),
// the frequency-moment counterpart of the coordinated sample: d rows of w
// counters; each item adds ±1 to one counter per row; a point query is the
// median of the d signed row readings. Unbiased per row, and the median
// concentrates the error to O(sqrt(F2)/sqrt(w)).
//
// Hashing: ONE shared PairwiseHash evaluation per label, with row r's
// bucket and sign carved out of disjoint bit fields of the 61-bit value
// (row r reads bits [r*(width_log2+1), (r+1)*(width_log2+1))). Each field
// of a pairwise-uniform value is itself pairwise uniform, so the per-row
// collision and sign-product expectations the analysis needs still hold;
// what is given up is independence BETWEEN rows, which only weakens the
// median's tail constant. In exchange the ingest path is a single
// hash_block() call per 64-label block — the same AVX-512 kernel and cost
// profile as CoordinatedSampler::add_batch — instead of d of them.
// Constraint: depth * (width_log2 + 1) <= 61 (PairwiseHash::kBits).
//
// Merge is element-wise counter addition (exact, associative,
// commutative), so count sketches from many sites compose at the referee
// into the sketch of the UNION stream with no loss — the property every
// structure in this repo must satisfy to ride the collection plane.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"
#include "common/serialize.h"
#include "hash/pairwise.h"

namespace ustream {

class CountSketch {
 public:
  static constexpr std::size_t kMaxDepth = 8;
  static constexpr std::size_t kMaxWidthLog2 = 20;

  CountSketch(std::size_t depth, std::size_t width_log2, std::uint64_t seed);

  void add(std::uint64_t label) { update(label, 1); }
  void update(std::uint64_t label, std::int64_t delta);

  // Batched ingestion: bit-identical to per-label update(label, +1) calls,
  // but hashes 64-label blocks through hash_block() (SIMD for
  // PairwiseHash).
  void add_batch(std::span<const std::uint64_t> labels);

  // Median-of-rows point estimate of the label's signed frequency.
  std::int64_t estimate(std::uint64_t label) const;

  // Median over rows of the sum of squared counters — the classic F2
  // (second frequency moment) estimator riding the same counters.
  double l2_squared() const;

  bool can_merge_with(const CountSketch& other) const noexcept {
    return seed_ == other.seed_ && depth_ == other.depth_ &&
           width_log2_ == other.width_log2_;
  }
  void merge(const CountSketch& other);

  std::size_t depth() const noexcept { return depth_; }
  std::size_t width() const noexcept { return std::size_t{1} << width_log2_; }
  std::size_t width_log2() const noexcept { return width_log2_; }
  std::uint64_t seed() const noexcept { return seed_; }
  std::uint64_t items_processed() const noexcept { return items_; }
  std::size_t bytes_used() const noexcept {
    return sizeof(*this) + counters_.capacity() * sizeof(std::int64_t);
  }

  void serialize(ByteWriter& w) const;
  std::vector<std::uint8_t> serialize() const;
  static CountSketch deserialize(ByteReader& r);
  static CountSketch deserialize(std::span<const std::uint8_t> bytes);

 private:
  static constexpr std::uint8_t kWireVersion = 1;
  static constexpr std::size_t kBatchBlock = 64;

  // Applies delta to every row for a label whose shared hash is h.
  void apply(std::uint64_t h, std::int64_t delta) noexcept;

  PairwiseHash hash_;
  std::uint64_t seed_;
  std::size_t depth_;
  std::size_t width_log2_;
  std::uint64_t bucket_mask_;  // width - 1
  std::vector<std::int64_t> counters_;  // depth * width, row-major
  std::uint64_t items_ = 0;
};

}  // namespace ustream
