#include "freq/universal_sketch.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/random.h"
#include "hash/batch.h"
#include "hash/level.h"
#include "obs/metrics.h"

namespace ustream {

namespace {

FreqConfig layer_config(const UniversalConfig& config, std::size_t layer) {
  FreqConfig fc;
  fc.depth = config.depth;
  fc.width_log2 = config.width_log2;
  fc.heavy_capacity = config.heavy_capacity;
  fc.seed = SeedSequence(config.seed).child(layer);
  return fc;
}

double g_square(double x) { return x * x; }
double g_xlog2(double x) { return x > 0.0 ? x * std::log2(x) : 0.0; }

}  // namespace

UniversalSketch::UniversalSketch(const UniversalConfig& config)
    : config_(config), sample_hash_(SeedSequence(config.seed).child(0x9eULL)) {
  USTREAM_REQUIRE(config.levels >= 1 && config.levels <= kMaxLevels,
                  "universal-sketch level count out of range");
  layers_.reserve(config.levels);
  for (std::size_t j = 0; j < config.levels; ++j) {
    layers_.emplace_back(layer_config(config, j));
  }
}

std::size_t UniversalSketch::level_of(std::uint64_t label) const noexcept {
  const auto lvl = static_cast<std::size_t>(
      hash_level(sample_hash_(label), PairwiseHash::kBits));
  return std::min(lvl, layers_.size() - 1);
}

void UniversalSketch::add(std::uint64_t label) {
  const std::size_t lvl = level_of(label);
  for (std::size_t j = 0; j <= lvl; ++j) layers_[j].add(label);
}

void UniversalSketch::add_batch(std::span<const std::uint64_t> labels) {
  USTREAM_COUNTER_ADD("ustream_freq_batch_items_total", labels.size());
  // Partition labels into per-layer substreams with one SIMD hash pass,
  // then feed each layer through its own batched ingest. Layer j receives
  // every label whose sampling level reaches j, so the expected total
  // routed volume is < 2x the input regardless of the layer count.
  std::vector<std::vector<std::uint64_t>> routed(layers_.size());
  routed[0].reserve(labels.size());
  std::uint64_t h[kBatchBlock];
  for (std::size_t i = 0; i < labels.size(); i += kBatchBlock) {
    const std::size_t n = std::min(kBatchBlock, labels.size() - i);
    hash_block(sample_hash_, labels.data() + i, h, n, /*reject_mask=*/0);
    for (std::size_t j = 0; j < n; ++j) {
      const auto lvl = std::min(
          static_cast<std::size_t>(hash_level(h[j], PairwiseHash::kBits)),
          layers_.size() - 1);
      for (std::size_t l = 0; l <= lvl; ++l) routed[l].push_back(labels[i + j]);
    }
  }
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    if (!routed[l].empty()) layers_[l].add_batch(routed[l]);
  }
}

double UniversalSketch::f1() const noexcept { return layers_[0].f1(); }

double UniversalSketch::g_sum(double (*g)(double)) const {
  const std::size_t top = layers_.size() - 1;
  double y = 0.0;
  for (std::size_t j = layers_.size(); j-- > 0;) {
    double layer_sum = 0.0;
    for (const auto& hh : layers_[j].top(config_.heavy_capacity)) {
      const double val = g(static_cast<double>(hh.estimate));
      if (j == top) {
        layer_sum += val;
      } else {
        // Hitters that survive to the next layer were already counted in
        // Y_{j+1} (twice, after doubling); subtracting once rebalances.
        layer_sum += level_of(hh.label) >= j + 1 ? -val : val;
      }
    }
    y = j == top ? layer_sum : 2.0 * y + layer_sum;
    if (y < 0.0) y = 0.0;
  }
  return y;
}

double UniversalSketch::f2() const { return g_sum(&g_square); }

double UniversalSketch::entropy() const {
  const double f1_total = f1();
  if (f1_total <= 0.0) return 0.0;
  // H = log2(F1) - (1/F1) * sum f(x) log2 f(x).
  const double y = g_sum(&g_xlog2);
  const double h = std::log2(f1_total) - y / f1_total;
  return h < 0.0 ? 0.0 : h;
}

std::size_t UniversalSketch::bytes_used() const noexcept {
  std::size_t total = sizeof(*this);
  for (const FreqSketch& layer : layers_) total += layer.bytes_used();
  return total;
}

bool UniversalSketch::can_merge_with(const UniversalSketch& other) const noexcept {
  if (config_.seed != other.config_.seed || layers_.size() != other.layers_.size()) {
    return false;
  }
  for (std::size_t j = 0; j < layers_.size(); ++j) {
    if (!layers_[j].can_merge_with(other.layers_[j])) return false;
  }
  return true;
}

void UniversalSketch::merge(const UniversalSketch& other) {
  USTREAM_REQUIRE(can_merge_with(other),
                  "merge requires universal sketches with identical configuration");
  for (std::size_t j = 0; j < layers_.size(); ++j) layers_[j].merge(other.layers_[j]);
}

void UniversalSketch::serialize(ByteWriter& w) const {
  w.u8(kWireVersion);
  w.u64(config_.seed);
  w.u8(static_cast<std::uint8_t>(layers_.size()));
  for (const FreqSketch& layer : layers_) layer.serialize(w);
}

std::vector<std::uint8_t> UniversalSketch::serialize() const {
  ByteWriter w(16 + layers_.size() * (64 + (config_.depth << config_.width_log2)));
  serialize(w);
  return w.take();
}

UniversalSketch UniversalSketch::deserialize(ByteReader& r) {
  if (r.u8() != kWireVersion) throw SerializationError("bad universal-sketch version");
  const std::uint64_t seed = r.u64();
  const std::size_t levels = r.u8();
  if (levels < 1 || levels > kMaxLevels) {
    throw SerializationError("universal-sketch level count out of range");
  }
  std::vector<FreqSketch> layers;
  layers.reserve(levels);
  for (std::size_t j = 0; j < levels; ++j) layers.push_back(FreqSketch::deserialize(r));
  UniversalConfig config;
  config.levels = levels;
  config.depth = layers[0].config().depth;
  config.width_log2 = layers[0].config().width_log2;
  config.heavy_capacity = layers[0].config().heavy_capacity;
  config.seed = seed;
  UniversalSketch s(config);
  // A freshly built sketch carries the canonical per-layer seeds and
  // shapes for this root seed; a payload whose layers disagree (tampered
  // or mixed provenance) is rejected before it can poison a merge.
  for (std::size_t j = 0; j < levels; ++j) {
    if (!s.layers_[j].can_merge_with(layers[j])) {
      throw SerializationError("universal-sketch layer shape mismatch");
    }
  }
  s.layers_ = std::move(layers);
  return s;
}

UniversalSketch UniversalSketch::deserialize(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  auto s = deserialize(r);
  if (!r.done()) throw SerializationError("trailing bytes after universal-sketch");
  return s;
}

}  // namespace ustream
