// FreqSketch — the per-site frequency summary that rides the collection
// plane as one payload: a CountSketch (unbiased signed point estimates,
// F2) paired with a SpaceSaver (guaranteed heavy-hitter intervals). The
// two views correct each other at query time: the count-sketch median is
// clamped into the space-saver's [lower, upper] interval, so a point
// estimate can never contradict the deterministic bounds, and top(k)
// reports both the interval and the clamped estimate per label.
//
// Merge is componentwise (counter addition + interval-sum union), which
// keeps the bundle associative and commutative — the serialized bytes of
// any merge tree over the same site summaries are identical, the contract
// MergeEngine's tree-reduce relies on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "freq/count_sketch.h"
#include "freq/space_saver.h"

namespace ustream {

struct FreqConfig {
  std::size_t depth = 4;          // count-sketch rows
  std::size_t width_log2 = 12;    // log2 of counters per row
  std::size_t heavy_capacity = 64;  // space-saver tracked entries
  std::uint64_t seed = 0;
};

class FreqSketch {
 public:
  explicit FreqSketch(const FreqConfig& config = {});

  void add(std::uint64_t label);
  void add_batch(std::span<const std::uint64_t> labels);

  // Point estimate: count-sketch median clamped into the space-saver's
  // interval for the label (so it respects the deterministic bounds).
  std::uint64_t estimate(std::uint64_t label) const;

  // The deterministic frequency interval alone.
  SpaceSaver::Bound bound(std::uint64_t label) const noexcept {
    return heavy_.estimate(label);
  }

  struct HeavyHitter {
    std::uint64_t label = 0;
    std::uint64_t upper = 0;     // space-saver upper bound
    std::uint64_t lower = 0;     // space-saver lower bound
    std::uint64_t estimate = 0;  // clamped count-sketch estimate
  };
  // Top-k by space-saver (count desc, label asc) order.
  std::vector<HeavyHitter> top(std::size_t k) const;

  double f1() const noexcept { return static_cast<double>(heavy_.total_weight()); }
  double f2() const { return sketch_.l2_squared(); }

  std::uint64_t items_processed() const noexcept { return heavy_.total_weight(); }
  const CountSketch& count_sketch() const noexcept { return sketch_; }
  const SpaceSaver& heavy() const noexcept { return heavy_; }
  const FreqConfig& config() const noexcept { return config_; }
  std::size_t bytes_used() const noexcept {
    return sizeof(*this) + sketch_.bytes_used() + heavy_.bytes_used();
  }

  bool can_merge_with(const FreqSketch& other) const noexcept {
    return sketch_.can_merge_with(other.sketch_) &&
           heavy_.can_merge_with(other.heavy_);
  }
  void merge(const FreqSketch& other);

  void serialize(ByteWriter& w) const;
  std::vector<std::uint8_t> serialize() const;
  static FreqSketch deserialize(ByteReader& r);
  static FreqSketch deserialize(std::span<const std::uint8_t> bytes);

 private:
  static constexpr std::uint8_t kWireVersion = 1;

  FreqSketch(const FreqConfig& config, CountSketch&& sketch, SpaceSaver&& heavy);

  FreqConfig config_;
  CountSketch sketch_;
  SpaceSaver heavy_;
};

}  // namespace ustream
