#include "freq/space_saver.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ustream {

SpaceSaver::SpaceSaver(std::size_t capacity)
    : capacity_(capacity), index_(capacity + 1) {
  USTREAM_REQUIRE(capacity >= 1, "space-saver capacity must be >= 1");
  slots_.reserve(capacity);
  heap_.reserve(capacity);
  pos_.reserve(capacity);
}

void SpaceSaver::heap_swap(std::size_t i, std::size_t j) noexcept {
  std::swap(heap_[i], heap_[j]);
  pos_[heap_[i]] = static_cast<std::uint32_t>(i);
  pos_[heap_[j]] = static_cast<std::uint32_t>(j);
}

void SpaceSaver::sift_up(std::size_t heap_index) noexcept {
  while (heap_index > 0) {
    const std::size_t parent = (heap_index - 1) / 2;
    if (!heap_less(heap_[heap_index], heap_[parent])) break;
    heap_swap(heap_index, parent);
    heap_index = parent;
  }
}

void SpaceSaver::sift_down(std::size_t heap_index) noexcept {
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t left = 2 * heap_index + 1;
    if (left >= n) break;
    std::size_t smallest = heap_index;
    if (heap_less(heap_[left], heap_[smallest])) smallest = left;
    const std::size_t right = left + 1;
    if (right < n && heap_less(heap_[right], heap_[smallest])) smallest = right;
    if (smallest == heap_index) break;
    heap_swap(heap_index, smallest);
    heap_index = smallest;
  }
}

void SpaceSaver::rebuild_heap() {
  heap_.resize(slots_.size());
  pos_.resize(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    heap_[i] = static_cast<std::uint32_t>(i);
    pos_[i] = static_cast<std::uint32_t>(i);
  }
  if (heap_.size() > 1) {
    for (std::size_t i = heap_.size() / 2; i-- > 0;) sift_down(i);
  }
}

void SpaceSaver::index_put(std::uint64_t label, std::uint32_t slot) {
  auto [entry, inserted] = index_.try_emplace(label, slot);
  if (!inserted) entry->value = slot;  // reclaim a stale row in place
}

SpaceSaver::Entry* SpaceSaver::find_slot(std::uint64_t label) noexcept {
  const auto* e = index_.find(label);
  if (e == nullptr) return nullptr;
  const std::uint32_t slot = e->value;
  // The index may point at a slot a later eviction handed to another
  // label; the slot's own label field is the source of truth.
  if (slot >= slots_.size() || slots_[slot].label != label) return nullptr;
  return &slots_[slot];
}

bool SpaceSaver::contains(std::uint64_t label) const noexcept {
  return find_slot(label) != nullptr;
}

void SpaceSaver::maybe_compact_index() {
  if (index_.size() <= 8 * slots_.size() + 64) return;
  index_.filter([this](const DenseMap<std::uint32_t>::Entry& e) {
    return e.value < slots_.size() && slots_[e.value].label == e.key;
  });
}

void SpaceSaver::add(std::uint64_t label, std::uint64_t weight) {
  if (weight == 0) return;
  total_ += weight;
  if (Entry* hit = find_slot(label)) {
    hit->count += weight;
    // The key only grew, so the slot can only move toward the leaves.
    sift_down(pos_[static_cast<std::size_t>(hit - slots_.data())]);
    return;
  }
  if (slots_.size() < capacity_) {
    const auto slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(Entry{label, absent_bound_ + weight, absent_bound_});
    heap_.push_back(slot);
    pos_.push_back(static_cast<std::uint32_t>(heap_.size() - 1));
    sift_up(heap_.size() - 1);
    index_put(label, slot);
    return;
  }
  // Full: the candidate {absent_bound_ + weight, absent_bound_} joins a
  // notional capacity+1 set and the (count, label)-minimum is evicted,
  // raising the absent bound to its count. When the candidate IS the
  // minimum this degenerates to bumping the bound; otherwise the heap root
  // is evicted and its slot reused in place.
  USTREAM_COUNTER_ADD("ustream_freq_heavy_evictions_total", 1);
  const std::uint32_t root = heap_[0];
  const Entry& min_entry = slots_[root];
  const std::uint64_t candidate_count = absent_bound_ + weight;
  const bool candidate_is_min =
      candidate_count < min_entry.count ||
      (candidate_count == min_entry.count && label < min_entry.label);
  if (candidate_is_min) {
    absent_bound_ = candidate_count;
    return;
  }
  const std::uint64_t evicted_count = min_entry.count;
  slots_[root] = Entry{label, absent_bound_ + weight, absent_bound_};
  absent_bound_ = evicted_count;
  sift_down(pos_[root]);
  index_put(label, root);
  maybe_compact_index();
}

SpaceSaver::Bound SpaceSaver::estimate(std::uint64_t label) const noexcept {
  if (const Entry* e = find_slot(label)) {
    return Bound{e->count, e->count - e->error};
  }
  return Bound{absent_bound_, 0};
}

std::vector<SpaceSaver::Entry> SpaceSaver::top(std::size_t k) const {
  std::vector<Entry> out(slots_.begin(), slots_.end());
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.label < b.label;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<SpaceSaver::Entry> SpaceSaver::guaranteed_at_least(
    std::uint64_t threshold) const {
  std::vector<Entry> out;
  for (const Entry& e : slots_) {
    if (e.count - e.error >= threshold) out.push_back(e);
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.label < b.label;
  });
  return out;
}

std::size_t SpaceSaver::bytes_used() const noexcept {
  return sizeof(*this) + slots_.capacity() * sizeof(Entry) +
         (heap_.capacity() + pos_.capacity()) * sizeof(std::uint32_t) +
         index_.bytes_used();
}

void SpaceSaver::merge(const SpaceSaver& other) {
  USTREAM_REQUIRE(can_merge_with(other),
                  "merge requires space-savers with identical capacity");
  USTREAM_TRACE_SPAN("ustream_freq_merge_ns");
  const std::uint64_t my_bound = absent_bound_;
  // Tracked-here labels: add the other summary's interval (its absent
  // bound when it never tracked the label).
  for (Entry& mine : slots_) {
    if (const Entry* theirs = other.find_slot(mine.label)) {
      mine.count += theirs->count;
      mine.error += theirs->error;
    } else {
      mine.count += other.absent_bound_;
      mine.error += other.absent_bound_;
    }
  }
  // Tracked-only-there labels join with THIS summary's pre-merge bound.
  for (const Entry& theirs : other.slots_) {
    if (find_slot(theirs.label) != nullptr) continue;
    const auto slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(Entry{theirs.label, my_bound + theirs.count, my_bound + theirs.error});
    index_put(theirs.label, slot);
  }
  absent_bound_ += other.absent_bound_;
  total_ += other.total_;
  rebuild_heap();
  maybe_compact_index();
}

void SpaceSaver::serialize(ByteWriter& w) const {
  w.u8(kWireVersion);
  w.varint(capacity_);
  w.varint(absent_bound_);
  w.varint(total_);
  w.varint(slots_.size());
  // Label-sorted, delta-encoded: the canonical byte layout every merge
  // order of the same summaries shares.
  std::vector<const Entry*> order;
  order.reserve(slots_.size());
  for (const Entry& e : slots_) order.push_back(&e);
  std::sort(order.begin(), order.end(),
            [](const Entry* a, const Entry* b) { return a->label < b->label; });
  std::uint64_t prev = 0;
  for (const Entry* e : order) {
    w.varint(e->label - prev);
    prev = e->label;
    w.varint(e->count);
    w.varint(e->error);
  }
}

std::vector<std::uint8_t> SpaceSaver::serialize() const {
  ByteWriter w(16 + slots_.size() * 12);
  serialize(w);
  return w.take();
}

SpaceSaver SpaceSaver::deserialize(ByteReader& r) {
  if (r.u8() != kWireVersion) throw SerializationError("bad space-saver version");
  const std::uint64_t capacity = r.varint();
  if (capacity == 0) throw SerializationError("space-saver capacity 0");
  const std::uint64_t absent_bound = r.varint();
  const std::uint64_t total = r.varint();
  const std::uint64_t count = r.varint();
  // A merged union summary legitimately exceeds its per-site capacity, but
  // every entry costs at least 3 encoded bytes — bound the allocation by
  // what the buffer can actually carry.
  if (count > r.remaining() / 3 + 1) throw SerializationError("space-saver overfull");
  SpaceSaver s(static_cast<std::size_t>(capacity));
  s.absent_bound_ = absent_bound;
  s.total_ = total;
  s.slots_.reserve(static_cast<std::size_t>(count));
  std::uint64_t label = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t delta = r.varint();
    if (i > 0 && delta == 0) throw SerializationError("duplicate space-saver label");
    label += delta;
    Entry e;
    e.label = label;
    e.count = r.varint();
    e.error = r.varint();
    if (e.error > e.count || e.count == 0) {
      throw SerializationError("space-saver entry bounds inverted");
    }
    if (e.count < absent_bound) {
      throw SerializationError("space-saver entry below absent bound");
    }
    const auto slot = static_cast<std::uint32_t>(s.slots_.size());
    s.slots_.push_back(e);
    s.index_put(e.label, slot);
  }
  if (s.total_ != 0) {
    // total is the summed stream weight; each tracked lower bound is part
    // of it, so their sum can never exceed it.
    std::uint64_t lower_sum = 0;
    for (const Entry& e : s.slots_) lower_sum += e.count - e.error;
    if (lower_sum > s.total_) throw SerializationError("space-saver totals inconsistent");
  }
  s.rebuild_heap();
  return s;
}

SpaceSaver SpaceSaver::deserialize(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  auto s = deserialize(r);
  if (!r.done()) throw SerializationError("trailing bytes after space-saver");
  return s;
}

}  // namespace ustream
