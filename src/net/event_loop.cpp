#include "net/event_loop.h"

#include <poll.h>
#include <unistd.h>
#if defined(__linux__)
#include <sys/epoll.h>
#endif

#include <cerrno>
#include <cstring>
#include <unordered_map>

#include "net/socket.h"

namespace ustream::net {

namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

// Poll backend state: a persistent pollfd array, a parallel user-data
// array, and an fd -> slot map kept consistent by swap-remove. No per-round
// rebuild: registration changes touch exactly one slot.
struct EventLoop::PollState {
  std::vector<pollfd> pfds;
  std::vector<void*> data;
  std::unordered_map<int, std::size_t> index;
};

namespace {

short to_poll_events(unsigned interest) noexcept {
  short events = 0;
  if ((interest & EventLoop::kRead) != 0) events |= POLLIN;
  if ((interest & EventLoop::kWrite) != 0) events |= POLLOUT;
  return events;
}

unsigned from_poll_events(short revents) noexcept {
  unsigned events = 0;
  if ((revents & (POLLIN | POLLPRI)) != 0) events |= EventLoop::kRead;
  if ((revents & POLLOUT) != 0) events |= EventLoop::kWrite;
  if ((revents & (POLLERR | POLLNVAL)) != 0) events |= EventLoop::kError;
  if ((revents & POLLHUP) != 0) events |= EventLoop::kHangup;
  return events;
}

#if defined(__linux__)
std::uint32_t to_epoll_events(unsigned interest) noexcept {
  std::uint32_t events = 0;
  if ((interest & EventLoop::kRead) != 0) events |= EPOLLIN;
  if ((interest & EventLoop::kWrite) != 0) events |= EPOLLOUT;
  return events;
}

unsigned from_epoll_events(std::uint32_t events) noexcept {
  unsigned out = 0;
  if ((events & (EPOLLIN | EPOLLPRI)) != 0) out |= EventLoop::kRead;
  if ((events & EPOLLOUT) != 0) out |= EventLoop::kWrite;
  if ((events & EPOLLERR) != 0) out |= EventLoop::kError;
  if ((events & (EPOLLHUP | EPOLLRDHUP)) != 0) out |= EventLoop::kHangup;
  return out;
}
#endif

}  // namespace

EventLoop::EventLoop(Backend backend) : backend_(backend) {
#if defined(__linux__)
  if (backend_ == Backend::kDefault) backend_ = Backend::kEpoll;
#else
  USTREAM_REQUIRE(backend_ != Backend::kEpoll, "epoll backend requires Linux");
  if (backend_ == Backend::kDefault) backend_ = Backend::kPoll;
#endif
  if (backend_ == Backend::kPoll) {
    poll_ = new PollState();
    return;
  }
#if defined(__linux__)
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw TransportError(errno_text("epoll_create1"));
#endif
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  delete poll_;
}

std::size_t EventLoop::watched() const noexcept {
  return poll_ != nullptr ? poll_->index.size() : epoll_size_;
}

void EventLoop::add(int fd, unsigned interest, void* data) {
  USTREAM_REQUIRE(fd >= 0, "EventLoop::add: invalid fd");
  if (poll_ != nullptr) {
    USTREAM_REQUIRE(poll_->index.emplace(fd, poll_->pfds.size()).second,
                    "EventLoop::add: fd already registered");
    poll_->pfds.push_back({fd, to_poll_events(interest), 0});
    poll_->data.push_back(data);
    return;
  }
#if defined(__linux__)
  epoll_event ev{};
  ev.events = to_epoll_events(interest);
  ev.data.ptr = data;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    if (errno == EEXIST) throw InvalidArgument("EventLoop::add: fd already registered");
    throw TransportError(errno_text("epoll_ctl(ADD)"));
  }
  ++epoll_size_;
#endif
}

void EventLoop::modify(int fd, unsigned interest, void* data) {
  if (poll_ != nullptr) {
    const auto it = poll_->index.find(fd);
    USTREAM_REQUIRE(it != poll_->index.end(), "EventLoop::modify: fd not registered");
    poll_->pfds[it->second].events = to_poll_events(interest);
    poll_->data[it->second] = data;
    return;
  }
#if defined(__linux__)
  epoll_event ev{};
  ev.events = to_epoll_events(interest);
  ev.data.ptr = data;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    if (errno == ENOENT) throw InvalidArgument("EventLoop::modify: fd not registered");
    throw TransportError(errno_text("epoll_ctl(MOD)"));
  }
#endif
}

void EventLoop::remove(int fd) {
  if (poll_ != nullptr) {
    const auto it = poll_->index.find(fd);
    USTREAM_REQUIRE(it != poll_->index.end(), "EventLoop::remove: fd not registered");
    const std::size_t slot = it->second;
    const std::size_t last = poll_->pfds.size() - 1;
    if (slot != last) {
      poll_->pfds[slot] = poll_->pfds[last];
      poll_->data[slot] = poll_->data[last];
      poll_->index[poll_->pfds[slot].fd] = slot;
    }
    poll_->pfds.pop_back();
    poll_->data.pop_back();
    poll_->index.erase(it);
    return;
  }
#if defined(__linux__)
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) != 0) {
    if (errno == ENOENT) throw InvalidArgument("EventLoop::remove: fd not registered");
    throw TransportError(errno_text("epoll_ctl(DEL)"));
  }
  --epoll_size_;
#endif
}

std::size_t EventLoop::wait(std::vector<Event>& out, int timeout_ms) {
  out.clear();
  if (poll_ != nullptr) {
    const int n = ::poll(poll_->pfds.data(), poll_->pfds.size(), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return 0;
      throw TransportError(errno_text("poll"));
    }
    if (n == 0) return 0;
    out.reserve(static_cast<std::size_t>(n));
    int remaining = n;
    for (std::size_t i = 0; i < poll_->pfds.size() && remaining > 0; ++i) {
      const short revents = poll_->pfds[i].revents;
      if (revents == 0) continue;
      out.push_back({poll_->data[i], from_poll_events(revents)});
      --remaining;
    }
    return out.size();
  }
#if defined(__linux__)
  epoll_event events[256];
  const int n = ::epoll_wait(epoll_fd_, events, 256, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    throw TransportError(errno_text("epoll_wait"));
  }
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back({events[i].data.ptr, from_epoll_events(events[i].events)});
  }
#endif
  return out.size();
}

}  // namespace ustream::net
