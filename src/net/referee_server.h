// RefereeServer — the referee side of the paper's protocol on a real
// socket: a single-threaded poll() event loop that accepts site
// connections, reassembles length-delimited version-1 CRC frames from
// partial reads, and routes every complete frame through the SAME
// CollectState (dedup, epoch latest-wins, quarantine) the in-process
// referee uses, so the frame-layer semantics over TCP are identical to
// Channel/FaultyChannel by construction.
//
// Event-loop states per connection (DESIGN.md §8):
//
//   reading-length  ->  reading-frame  ->  (ingest, queue 1-byte ack)
//        ^                                            |
//        +--------------------------------------------+
//
// A connection that closes mid-frame is a truncated transmission: the
// partial bytes are fed to CollectState::ingest, which quarantines them —
// a killed site shows up in the CollectReport exactly like a truncating
// FaultyChannel, and the final estimate keeps the degraded-lower-bound
// semantics of DESIGN.md §6.3.
//
// The loop runs until every expected site has reported (acks flushed), the
// configured deadline passes (degraded finish), or request_stop() is
// called from another thread (self-pipe wakeup). Merging is the caller's
// step: collect_and_merge() deserializes accepted payloads and finishes
// with the parallel MergeEngine, mirroring DistributedRun::collect().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/merge_engine.h"
#include "distributed/collect.h"
#include "distributed/transport.h"
#include "net/socket.h"

namespace ustream::net {

struct RefereeServerConfig {
  std::string bind_host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = pick an ephemeral port (read back via port())
  std::size_t sites = 1;
  PayloadKind expected_kind = PayloadKind::kF0Estimator;
  DedupMode dedup = DedupMode::kExactlyOnce;

  // Overall collection deadline; zero waits until complete/stopped. On
  // expiry the server finishes degraded with whatever arrived.
  std::chrono::milliseconds timeout{0};

  // Length-prefix sanity bound: a larger announced frame is a protocol
  // violation (quarantined, connection dropped) rather than an allocation.
  std::size_t max_frame_bytes = 64u << 20;

  // Admin endpoint (DESIGN.md §9.3): when set, a second listener on this
  // port (0 = ephemeral, read back via admin_port()) joins the same poll
  // loop and serves live metrics snapshots mid-collection. One-line
  // requests, response then close:
  //   GET /metrics       Prometheus text exposition
  //   GET /metrics.json  one JSON line
  //   GET /health        "ok"
  std::optional<std::uint16_t> admin_port;
};

class RefereeServer {
 public:
  // Binds and listens immediately (so a client started right after the
  // constructor returns can already connect). Throws TransportError if the
  // port cannot be bound.
  explicit RefereeServer(RefereeServerConfig config);

  std::uint16_t port() const noexcept { return port_; }
  std::size_t sites() const noexcept { return config_.sites; }

  // Bound admin port; nullopt when the admin endpoint is disabled.
  std::optional<std::uint16_t> admin_port() const noexcept { return admin_port_; }

  // Consumes an accepted payload. Returns false iff the payload fails to
  // deserialize despite its CRC matching (the 2^-32 collision case): the
  // frame is then quarantined and the site reopened, and the client sees a
  // 'Q' ack telling it to retransmit.
  using PayloadSink = std::function<bool(std::size_t site, std::uint32_t epoch,
                                         std::vector<std::uint8_t>&& payload)>;

  struct Result {
    CollectReport report;
    ChannelStats wire;      // complete frames observed on the wire, per site
    bool timed_out = false; // deadline expired before every site reported
  };

  // Runs the event loop to completion. Call at most once.
  Result run(const PayloadSink& sink);

  // Thread-safe: wakes the poll loop and makes run() return with whatever
  // has been collected so far.
  void request_stop() noexcept;

 private:
  struct Conn;
  class Loop;

  RefereeServerConfig config_;
  Socket listener_;
  Socket admin_listener_;  // invalid when the admin endpoint is disabled
  WakePipe wake_;
  std::atomic<bool> stop_{false};
  std::uint16_t port_ = 0;
  std::optional<std::uint16_t> admin_port_;
};

// The referee's full end-of-stream step over TCP: collect frames, decode
// the per-site sketches, tree-reduce them on the engine's pool in site
// order (byte-identical to the sequential fold — merge_engine.h). Returns
// nullopt union_sketch only for a fully degraded (zero-site) collection,
// matching CollectState::finish().
template <typename Sketch>
struct NetCollectResult {
  CollectReport report;
  ChannelStats wire;
  std::optional<Sketch> union_sketch;
  bool timed_out = false;
};

template <typename Sketch>
NetCollectResult<Sketch> collect_and_merge(RefereeServer& server,
                                           MergeEngine& engine = MergeEngine::shared()) {
  std::vector<std::optional<Sketch>> accepted(server.sites());
  RefereeServer::Result res =
      server.run([&accepted](std::size_t site, std::uint32_t /*epoch*/,
                             std::vector<std::uint8_t>&& payload) {
        try {
          accepted[site].emplace(
              Sketch::deserialize(std::span<const std::uint8_t>(payload)));
          return true;
        } catch (const SerializationError&) {
          return false;
        }
      });
  NetCollectResult<Sketch> out;
  out.report = std::move(res.report);
  out.wire = std::move(res.wire);
  out.timed_out = res.timed_out;
  out.union_sketch = engine.reduce(std::move(accepted));
  return out;
}

}  // namespace ustream::net
