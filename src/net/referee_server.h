// RefereeServer — the referee side of the paper's protocol on real
// sockets: a sharded collection plane of event loops (EventLoop: epoll on
// Linux, poll fallback) that accepts site connections, reassembles
// length-delimited version-1 CRC frames from partial reads, and routes
// every complete frame through the SAME CollectState machinery (dedup,
// epoch latest-wins, quarantine) the in-process referee uses, so the
// frame-layer semantics over TCP are identical to Channel/FaultyChannel by
// construction.
//
// Sharding (DESIGN.md §10): `shards = N` runs N worker event loops, each
// with its own SO_REUSEPORT acceptor on the same port (the kernel
// load-balances incoming connections), its own CollectState ledger, its
// own wire stats and its own `shard="k"`-labeled metrics. Correctness
// across shards rests on two pieces:
//
//   * a shared per-site arbiter (one short mutex acquisition per ACCEPTED
//     frame — never per byte): a frame that passes a shard's local
//     validation must also win the global (site, epoch) claim, else the
//     shard demotes its local acceptance to the duplicate/stale verdict a
//     single sequential loop would have issued;
//   * a deterministic fold at finish: per-shard ledgers merge through
//     merge_reports() and the accepted per-site payloads (global slots,
//     arbiter-ordered) reduce through the parallel MergeEngine in site
//     order — byte-identical to the single-loop referee on the same
//     frame set.
//
// Event-loop states per connection (DESIGN.md §8):
//
//   reading-length  ->  reading-frame  ->  (ingest, queue 1-byte ack)
//        ^                                            |
//        +--------------------------------------------+
//
// A connection that closes mid-frame is a truncated transmission: the
// partial bytes are fed to CollectState::ingest, which quarantines them —
// a killed site shows up in the CollectReport exactly like a truncating
// FaultyChannel, and the final estimate keeps the degraded-lower-bound
// semantics of DESIGN.md §6.3.
//
// The loops run until every expected site has reported somewhere (acks
// flushed), the configured deadline passes (degraded finish), or
// request_stop() is called from another thread (per-shard WakePipe
// wakeup). Merging is the caller's step: collect_and_merge() deserializes
// accepted payloads and finishes with the parallel MergeEngine, mirroring
// DistributedRun::collect().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/merge_engine.h"
#include "distributed/collect.h"
#include "distributed/transport.h"
#include "durability/recovery.h"
#include "net/event_loop.h"
#include "net/socket.h"

namespace ustream::net {

struct RefereeServerConfig {
  std::string bind_host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = pick an ephemeral port (read back via port())
  std::size_t sites = 1;
  PayloadKind expected_kind = PayloadKind::kF0Estimator;
  DedupMode dedup = DedupMode::kExactlyOnce;

  // Continuous-mode delta protocol (DESIGN.md §12). When set, frames of
  // this kind are accepted iff they extend the site's epoch chain exactly
  // (accepted_epoch + 1, globally arbitrated); anything else earns the 'R'
  // resync ack that tells the site to re-base with a full frame of
  // expected_kind. Requires kLatestWins. The sink receives each accepted
  // payload with its kind, so it can apply deltas onto its per-site mirror
  // instead of replacing it.
  std::optional<PayloadKind> delta_kind;

  // Keep collecting after every site has reported (continuous monitoring):
  // completion never fires, and the server runs until the deadline expires
  // or request_stop() is called.
  bool continuous = false;

  // Worker event loops. 1 keeps the original single-threaded referee (no
  // extra threads are spawned); N > 1 runs N-1 extra shard threads with
  // SO_REUSEPORT acceptors on the same port.
  std::size_t shards = 1;

  // Readiness backend for every shard loop; kDefault = epoll on Linux.
  EventLoop::Backend backend = EventLoop::Backend::kDefault;

  // Overall collection deadline; zero waits until complete/stopped. On
  // expiry the server finishes degraded with whatever arrived.
  std::chrono::milliseconds timeout{0};

  // Length-prefix sanity bound: a larger announced frame is a protocol
  // violation (quarantined, connection dropped) rather than an allocation.
  std::size_t max_frame_bytes = 64u << 20;

  // Admin endpoint (DESIGN.md §9.3): when set, a second listener on this
  // port (0 = ephemeral, read back via admin_port()) joins shard 0's
  // event loop and serves live metrics snapshots mid-collection. One-line
  // requests, response then close:
  //   GET /metrics       Prometheus text exposition
  //   GET /metrics.json  one JSON line
  //   GET /health        "ok"
  //   GET /query?e=EXPR  set-expression estimate (JSON; %xx-decoded)
  //   GET /query.txt?e=EXPR  same, text rendering
  std::optional<std::uint16_t> admin_port;

  // Serves the admin /query route (DESIGN.md §13). Receives the raw query
  // string as it appeared after `e=` (still %xx-encoded — decode with
  // query::percent_decode; net doesn't link the query library); returns
  // the response body (JSON when `json`). Runs on shard 0's event loop
  // thread while the sink may be
  // firing on other shards, so the handler must do its own locking around
  // whatever sketch store it reads. Unset = /query answers 404. Exceptions
  // become a one-line "error: ..." body with a 400 status.
  std::function<std::string(const std::string& expr, bool json)> query_handler;

  // Durability (DESIGN.md §11): when set, every frame that wins arbitration
  // is appended to a per-shard WAL under `dir` and committed (write + fsync
  // per policy) BEFORE its ack byte is queued, so a kill -9'd referee can
  // resume with `recover = true`: the dir is replayed through the same
  // CollectState acceptance path and the server starts with every
  // previously-acked site already claimed in the arbiter — re-pushes dedup
  // against recovered state exactly as they would against live state.
  struct Durability {
    std::string dir;
    durability::FsyncPolicy fsync = durability::FsyncPolicy::kInterval;
    std::chrono::milliseconds fsync_interval{50};
    std::uint64_t segment_bytes = 64ull << 20;
    std::uint64_t snapshot_every = 0;  // snapshot per N accepted (0 = never)
    bool recover = false;
  };
  std::optional<Durability> wal;
};

class RefereeServer {
 public:
  // Binds and listens immediately (so a client started right after the
  // constructor returns can already connect). Throws TransportError if the
  // port cannot be bound.
  explicit RefereeServer(RefereeServerConfig config);

  std::uint16_t port() const noexcept { return port_; }
  std::size_t sites() const noexcept { return config_.sites; }
  std::size_t shards() const noexcept { return config_.shards; }

  // Bound admin port; nullopt when the admin endpoint is disabled.
  std::optional<std::uint16_t> admin_port() const noexcept { return admin_port_; }

  // Consumes an accepted payload. Returns false iff the payload fails to
  // deserialize despite its CRC matching (the 2^-32 collision case): the
  // frame is then quarantined and the site reopened, and the client sees a
  // 'Q' ack telling it to retransmit — except for a delta payload, whose
  // failure demotes the acceptance to a resync ('R'): retransmitting a
  // delta that cannot apply is useless, the site owes a full frame. `kind`
  // is the frame's PayloadKind (config.expected_kind, or config.delta_kind
  // for chain deltas); `group` is the frame's group tag (0 = ungrouped), so
  // a grouped sink can keep per-tenant stores apart. In a sharded server
  // the sink is invoked under the shared arbiter mutex, so calls are
  // serialized and arrive in global acceptance order — a plain vector-slot
  // sink needs no locking of its own.
  using PayloadSink = std::function<bool(std::size_t site, std::uint32_t epoch,
                                         std::uint16_t group, PayloadKind kind,
                                         std::vector<std::uint8_t>&& payload)>;

  // One shard's view of the collection — the fold inputs, kept visible so
  // tests and the CLI can show where frames landed.
  struct ShardObservation {
    CollectReport report;
    ChannelStats wire;
  };

  // What the WAL did during this run (zeros when durability is off).
  struct DurabilityInfo {
    bool enabled = false;
    bool recovered = false;           // config.durability->recover was set
    std::size_t sites_recovered = 0;  // sites preloaded from the WAL dir
    std::uint64_t frames_replayed = 0;
    std::uint64_t records_logged = 0;
    std::uint64_t bytes_logged = 0;
    std::uint64_t fsyncs = 0;
    std::uint64_t snapshots = 0;
    std::string recovery_summary;  // RecoveryResult::summary(), "" if fresh
  };

  struct Result {
    CollectReport report;  // merge_reports() fold of the shard ledgers
    ChannelStats wire;     // complete frames observed on the wire, per site
    bool timed_out = false;  // deadline expired before every site reported
    std::vector<ShardObservation> shards;  // size == config.shards
    DurabilityInfo durability;
  };

  // Runs the event loop(s) to completion. Call at most once.
  Result run(const PayloadSink& sink);

  // Thread-safe: wakes every shard loop and makes run() return with
  // whatever has been collected so far.
  void request_stop() noexcept;

  // Non-null iff config.durability was set. What recovery replayed is at
  // durable_log()->recovered() before run() is even called.
  const durability::DurableLog* durable_log() const noexcept { return durable_.get(); }

 private:
  struct Conn;
  struct Shared;
  class Shard;

  void notify_all() noexcept;

  RefereeServerConfig config_;
  std::unique_ptr<durability::DurableLog> durable_;  // null when disabled
  std::vector<Socket> listeners_;  // one per shard (SO_REUSEPORT when > 1)
  Socket admin_listener_;  // invalid when the admin endpoint is disabled
  std::vector<std::unique_ptr<WakePipe>> wakes_;  // one per shard
  std::atomic<bool> stop_{false};
  std::uint16_t port_ = 0;
  std::optional<std::uint16_t> admin_port_;
};

// The referee's full end-of-stream step over TCP: collect frames, decode
// the per-site sketches, tree-reduce them on the engine's pool in site
// order (byte-identical to the sequential fold — merge_engine.h). Returns
// nullopt union_sketch only for a fully degraded (zero-site) collection,
// matching CollectState::finish().
template <typename Sketch>
struct NetCollectResult {
  CollectReport report;
  ChannelStats wire;
  std::optional<Sketch> union_sketch;
  bool timed_out = false;
  std::vector<RefereeServer::ShardObservation> shards;
  RefereeServer::DurabilityInfo durability;
};

template <typename Sketch>
NetCollectResult<Sketch> collect_and_merge(RefereeServer& server,
                                           MergeEngine& engine = MergeEngine::shared()) {
  std::vector<std::optional<Sketch>> accepted(server.sites());
  RefereeServer::Result res =
      server.run([&accepted](std::size_t site, std::uint32_t /*epoch*/,
                             std::uint16_t /*group*/, PayloadKind /*kind*/,
                             std::vector<std::uint8_t>&& payload) {
        try {
          accepted[site].emplace(
              Sketch::deserialize(std::span<const std::uint8_t>(payload)));
          return true;
        } catch (const SerializationError&) {
          return false;
        }
      });
  NetCollectResult<Sketch> out;
  out.report = std::move(res.report);
  out.wire = std::move(res.wire);
  out.timed_out = res.timed_out;
  out.shards = std::move(res.shards);
  out.durability = std::move(res.durability);
  out.union_sketch = engine.reduce(std::move(accepted));
  return out;
}

}  // namespace ustream::net
