// RAII socket + poll-loop primitives for the net layer, portable POSIX.
//
// Everything here is transport plumbing with no protocol knowledge: owning
// file descriptors (Socket), loopback/TCP listen + connect with timeouts,
// full-buffer blocking I/O helpers for the client side, and a self-pipe
// (WakePipe) so a poll()-based event loop can be woken from another thread
// without races. The framing and referee logic live one layer up in
// tcp_transport.h / referee_server.h.
//
// Error model: failures that the caller cannot prevent (refused connection,
// peer reset, timeout) throw TransportError; programmer errors (bad host
// string, invalid port) throw InvalidArgument — matching common/error.h's
// split between environment and misuse.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>

#include "common/error.h"

namespace ustream::net {

// Thrown when the network (not the caller) misbehaves: connect refused or
// timed out, peer closed mid-message, short write on a closed pipe.
class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& what) : std::runtime_error(what) {}
};

// Move-only owner of a POSIX file descriptor. -1 means "no socket"; close
// errors on destruction are swallowed (nothing sane can be done with them).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.release()) {}
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept;
  void close() noexcept;

 private:
  int fd_ = -1;
};

// Binds and listens on host:port (host must be a numeric IPv4 address or
// "localhost"; port 0 picks an ephemeral port — read it back with
// local_port). The returned socket is nonblocking with SO_REUSEADDR set.
// With reuse_port, SO_REUSEPORT is also set before bind so several
// listeners can share one port and the kernel load-balances incoming
// connections across them — the sharded referee's acceptor fan-out.
Socket listen_tcp(const std::string& host, std::uint16_t port, int backlog = 64,
                  bool reuse_port = false);

// The port a bound socket actually landed on (resolves port 0).
std::uint16_t local_port(const Socket& sock);

// Connects to host:port within `timeout` (nonblocking connect + poll), then
// returns a BLOCKING socket with send/recv timeouts set to `io_timeout`, so
// the client side can use plain full-buffer reads and writes. Throws
// TransportError on refusal or timeout.
Socket connect_tcp(const std::string& host, std::uint16_t port,
                   std::chrono::milliseconds timeout,
                   std::chrono::milliseconds io_timeout);

// Nonblocking accept on a listening socket; invalid Socket when no
// connection is pending. The accepted socket is made nonblocking.
Socket accept_conn(const Socket& listener);

void set_nonblocking(int fd, bool nonblocking);

// Writes the whole buffer on a blocking socket (MSG_NOSIGNAL — a dead peer
// must surface as an error, not SIGPIPE). Throws TransportError on any
// failure or send timeout.
void send_all(const Socket& sock, std::span<const std::uint8_t> bytes);

// Reads exactly bytes.size() bytes on a blocking socket. Throws
// TransportError on EOF, error, or receive timeout.
void recv_exact(const Socket& sock, std::span<std::uint8_t> bytes);

// Self-pipe for waking a poll() loop from another thread. notify() is
// async-signal-safe and idempotent; drain() consumes pending wakeups.
class WakePipe {
 public:
  WakePipe();   // throws TransportError if the pipe cannot be created
  ~WakePipe() = default;
  WakePipe(const WakePipe&) = delete;
  WakePipe& operator=(const WakePipe&) = delete;

  int read_fd() const noexcept { return read_end_.fd(); }
  void notify() noexcept;
  void drain() noexcept;

 private:
  Socket read_end_;
  Socket write_end_;
};

}  // namespace ustream::net
