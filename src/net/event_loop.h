// EventLoop — readiness notification behind one interface: epoll(7) on
// Linux, a poll(2) fallback everywhere else (and on Linux when asked, so
// both backends stay tested on the machines we actually run).
//
// Why this exists: RefereeServer's original loop rebuilt a pollfd array
// and rescanned every connection's revents on every round — O(n) work per
// wakeup even when one fd was ready, which turns a 10k-connection soak
// quadratic. Both backends here dispatch only READY fds to the caller:
//
//   * epoll: the kernel keeps the interest list; epoll_wait returns ready
//     events only. add/modify/remove are one epoll_ctl each.
//   * poll: a persistent pollfd array + fd->slot index map, maintained
//     incrementally (swap-remove on remove), so per-event bookkeeping is
//     O(1) and wait() emits only entries with revents set. The in-kernel
//     scan poll(2) itself does is the backend's inherent cost — the
//     reason epoll is the Linux default.
//
// The loop stores one opaque `void*` per fd and hands it back in each
// Event, so callers dispatch straight to their connection object without a
// lookup. Registered pointers must stay valid until remove() — the referee
// keeps connections in node-stable containers for exactly this reason.
//
// Level-triggered semantics in both backends: an fd with unread bytes (or
// writable space) reports ready on every wait() until the condition clears.
// Not thread-safe; one EventLoop belongs to one shard thread. Cross-thread
// wakeup is WakePipe's job (register its read end like any other fd).
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.h"

namespace ustream::net {

class EventLoop {
 public:
  enum class Backend {
    kDefault,  // epoll where available, else poll
    kEpoll,    // Linux only; InvalidArgument elsewhere
    kPoll,
  };

  // Interest / readiness bits. kError and kHangup are readiness-only: they
  // are always reported, never subscribed.
  static constexpr unsigned kRead = 1u << 0;
  static constexpr unsigned kWrite = 1u << 1;
  static constexpr unsigned kError = 1u << 2;
  static constexpr unsigned kHangup = 1u << 3;

  struct Event {
    void* data = nullptr;
    unsigned events = 0;  // kRead/kWrite/kError/kHangup mask
  };

  explicit EventLoop(Backend backend = Backend::kDefault);
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // The backend actually in use (never kDefault).
  Backend backend() const noexcept { return backend_; }

  // Number of fds currently registered.
  std::size_t watched() const noexcept;

  // Registers fd with an interest mask (kRead/kWrite). `data` is returned
  // verbatim in every Event for this fd. Throws InvalidArgument if fd is
  // already registered, TransportError on kernel failure.
  void add(int fd, unsigned interest, void* data);

  // Updates interest (and data) for a registered fd. O(1).
  void modify(int fd, unsigned interest, void* data);

  // Deregisters fd. O(1) (swap-remove in the poll backend). The fd's
  // pending events, if any, are simply never reported again.
  void remove(int fd);

  // Blocks up to timeout_ms (-1 = forever, 0 = poll) and fills `out`
  // (cleared first) with the ready fds only. Returns out.size(). A signal
  // (EINTR) returns 0 — callers just loop. Throws TransportError on any
  // other kernel failure.
  std::size_t wait(std::vector<Event>& out, int timeout_ms);

 private:
  struct PollState;

  Backend backend_;
  int epoll_fd_ = -1;          // kEpoll
  std::size_t epoll_size_ = 0; // kEpoll: registered-fd count
  PollState* poll_ = nullptr;  // kPoll
};

}  // namespace ustream::net
