#include "net/referee_server.h"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>

#include "net/tcp_transport.h"

namespace ustream::net {

namespace {

// Little-endian u32 without alignment assumptions.
std::uint32_t read_u32le(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

// One site connection mid-reassembly. `expected` is nullopt while the
// 4-byte length prefix is still incomplete (state "reading-length");
// once known, `in` accumulates until the full frame arrived.
struct RefereeServer::Conn {
  Socket sock;
  std::vector<std::uint8_t> in;
  std::optional<std::uint32_t> expected;
  std::vector<std::uint8_t> out;  // pending ack bytes
  bool closed = false;            // peer gone; kept only to flush `out`
};

class RefereeServer::Loop {
 public:
  Loop(RefereeServer& server, const PayloadSink& sink)
      : server_(server),
        config_(server.config_),
        sink_(sink),
        state_(config_.sites, config_.expected_kind, config_.dedup) {
    wire_.bytes_per_site.assign(config_.sites, 0);
  }

  Result run() {
    using clock = std::chrono::steady_clock;
    const bool has_deadline = config_.timeout.count() > 0;
    const auto deadline = clock::now() + config_.timeout;
    bool timed_out = false;

    while (!server_.stop_.load(std::memory_order_acquire)) {
      if (complete()) break;
      int poll_ms = -1;
      if (has_deadline) {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - clock::now());
        if (left.count() <= 0) {
          timed_out = true;
          break;
        }
        poll_ms = static_cast<int>(std::min<long long>(left.count(),
                                                       std::numeric_limits<int>::max()));
      }

      std::vector<pollfd> pfds;
      pfds.reserve(2 + conns_.size());
      pfds.push_back({server_.wake_.read_fd(), POLLIN, 0});
      pfds.push_back({server_.listener_.fd(), POLLIN, 0});
      for (const Conn& c : conns_) {
        short events = 0;
        if (!c.closed) events |= POLLIN;
        if (!c.out.empty()) events |= POLLOUT;
        pfds.push_back({c.sock.fd(), events, 0});
      }

      const int n = ::poll(pfds.data(), pfds.size(), poll_ms);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw TransportError(std::string("poll: ") + std::strerror(errno));
      }

      if (pfds[0].revents != 0) server_.wake_.drain();
      // Connections accepted now were not in this round's pfds — bound the
      // revents scan to the conns that were actually polled.
      const std::size_t polled = conns_.size();
      if (pfds[1].revents != 0) accept_new();
      for (std::size_t i = 0; i < polled; ++i) {
        const short revents = pfds[2 + i].revents;
        if (revents == 0) continue;
        if ((revents & POLLOUT) != 0) flush(conns_[i]);
        if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0 && !conns_[i].closed) {
          read_from(conns_[i]);
        }
      }
      // A connection is finished when the peer is gone and every ack owed
      // to it has been flushed (or can never be).
      std::erase_if(conns_, [](const Conn& c) { return c.closed && c.out.empty(); });
    }

    // Exhaustion is a CLIENT-side budget; the server cannot know it, so it
    // never marks sites exhausted — missing sites are reported plain.
    state_.finalize(std::numeric_limits<std::uint32_t>::max());
    Result res;
    res.report = std::move(state_.report());
    res.wire = std::move(wire_);
    res.timed_out = timed_out && !res.report.complete();
    return res;
  }

 private:
  bool complete() const {
    if (!state_.all_reported()) return false;
    return std::all_of(conns_.begin(), conns_.end(),
                       [](const Conn& c) { return c.out.empty(); });
  }

  void accept_new() {
    for (;;) {
      Socket sock = accept_conn(server_.listener_);
      if (!sock.valid()) break;
      Conn conn;
      conn.sock = std::move(sock);
      conns_.push_back(std::move(conn));
    }
  }

  void flush(Conn& conn) {
    while (!conn.out.empty()) {
      const ssize_t n =
          ::send(conn.sock.fd(), conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        conn.closed = true;  // peer gone; the ack is undeliverable
        conn.out.clear();
        return;
      }
      conn.out.erase(conn.out.begin(), conn.out.begin() + n);
    }
  }

  void read_from(Conn& conn) {
    std::uint8_t buf[16384];
    for (;;) {
      const ssize_t n = ::recv(conn.sock.fd(), buf, sizeof(buf), 0);
      if (n > 0) {
        conn.in.insert(conn.in.end(), buf, buf + n);
        if (!parse_frames(conn)) return;  // protocol violation: conn dropped
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      // EOF or hard error. Bytes stranded mid-frame are a truncated
      // transmission — a killed site. Feeding them to ingest() quarantines
      // them through the same frame-layer verdict as a truncating
      // FaultyChannel delivery.
      if (conn.expected.has_value() || !conn.in.empty()) {
        state_.ingest(std::span<const std::uint8_t>(conn.in));
        conn.in.clear();
      }
      conn.closed = true;
      return;
    }
  }

  // Consumes every complete [len][frame] unit in conn.in. Returns false if
  // the connection was dropped for announcing an oversized frame.
  bool parse_frames(Conn& conn) {
    std::size_t offset = 0;
    for (;;) {
      if (!conn.expected.has_value()) {
        if (conn.in.size() - offset < 4) break;
        const std::uint32_t len = read_u32le(conn.in.data() + offset);
        offset += 4;
        if (len > config_.max_frame_bytes) {
          // Not a reassembly state we can recover from: the stream is
          // desynchronized. Count it and drop the connection.
          state_.report().frames_quarantined += 1;
          conn.closed = true;
          conn.in.clear();
          conn.out.clear();
          return false;
        }
        conn.expected = len;
      }
      const std::uint32_t len = *conn.expected;
      if (conn.in.size() - offset < len) break;
      ingest_frame(conn, std::span<const std::uint8_t>(conn.in.data() + offset, len));
      offset += len;
      conn.expected.reset();
    }
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<std::ptrdiff_t>(
                                        std::min(offset, conn.in.size())));
    return true;
  }

  void ingest_frame(Conn& conn, std::span<const std::uint8_t> frame_bytes) {
    wire_.messages += 1;
    wire_.total_bytes += frame_bytes.size();
    if (frame_bytes.size() > wire_.max_message_bytes) {
      wire_.max_message_bytes = frame_bytes.size();
    }
    // Attribute the transmission to its claimed site (header peek; the
    // claim is only trusted for ACCOUNTING — acceptance still goes through
    // the full CRC validation in ingest). Every observed frame for a site
    // is a real attempt on its behalf: first one a send, later ones
    // retransmissions, mirroring the in-process collector's record_send.
    if (frame_bytes.size() >= kFrameHeaderBytes && looks_like_frame(frame_bytes)) {
      const std::uint32_t site = read_u32le(frame_bytes.data() + 8);
      if (site < config_.sites) {
        wire_.bytes_per_site[site] += frame_bytes.size();
        state_.record_send(site);
      }
    }

    const CollectReport& before = state_.report();
    const std::uint64_t dup0 = before.duplicates_dropped;
    const std::uint64_t stale0 = before.stale_dropped;
    auto accepted = state_.ingest(frame_bytes);
    PushAck ack = PushAck::kQuarantined;
    if (accepted) {
      const std::size_t site = accepted->site;
      const std::uint32_t epoch = accepted->epoch;
      if (sink_(site, epoch, std::move(accepted->payload))) {
        ack = PushAck::kAccepted;
      } else {
        state_.reject_accepted(site);  // CRC collision: reopen + quarantine
        ack = PushAck::kQuarantined;
      }
    } else if (state_.report().duplicates_dropped > dup0) {
      ack = PushAck::kDuplicate;
    } else if (state_.report().stale_dropped > stale0) {
      ack = PushAck::kStale;
    }
    conn.out.push_back(static_cast<std::uint8_t>(ack));
    flush(conn);  // usually completes inline; POLLOUT covers the rest
  }

  RefereeServer& server_;
  const RefereeServerConfig& config_;
  const PayloadSink& sink_;
  CollectState state_;
  ChannelStats wire_;
  std::vector<Conn> conns_;
};

RefereeServer::RefereeServer(RefereeServerConfig config) : config_(std::move(config)) {
  USTREAM_REQUIRE(config_.sites >= 1, "need at least one site");
  listener_ = listen_tcp(config_.bind_host, config_.port);
  port_ = local_port(listener_);
}

RefereeServer::Result RefereeServer::run(const PayloadSink& sink) {
  Loop loop(*this, sink);
  return loop.run();
}

void RefereeServer::request_stop() noexcept {
  stop_.store(true, std::memory_order_release);
  wake_.notify();
}

}  // namespace ustream::net
