#include "net/referee_server.h"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>

#include "net/tcp_transport.h"
#include "obs/exposition.h"
#include "obs/metrics.h"

namespace ustream::net {

namespace {

// Little-endian u32 without alignment assumptions.
std::uint32_t read_u32le(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

// One site connection mid-reassembly. `expected` is nullopt while the
// 4-byte length prefix is still incomplete (state "reading-length");
// once known, `in` accumulates until the full frame arrived.
struct RefereeServer::Conn {
  Socket sock;
  std::vector<std::uint8_t> in;
  std::optional<std::uint32_t> expected;
  std::vector<std::uint8_t> out;  // pending ack bytes
  bool closed = false;            // peer gone; kept only to flush `out`
};

namespace {

// One admin client: accumulate bytes until the first newline, answer the
// one-line request, flush, close. Admin clients never block the referee —
// they live in the same poll loop as site connections.
struct AdminConn {
  Socket sock;
  std::string in;
  std::string out;
  bool responded = false;
  bool closed = false;
};

// The referee's built-in metric set (DESIGN.md §9.2): the live view of the
// ledger a CollectReport shows post-hoc. Resolved once per Loop; all
// updates are single relaxed atomic ops on the default registry, so the
// admin endpoint, `ustream stats` and the serve --stats dump all read the
// same numbers.
struct RefereeMetrics {
  obs::Gauge& connections_open;
  obs::Counter& connections_total;
  obs::Counter& frames_accepted;
  obs::Counter& frames_duplicate;
  obs::Counter& frames_stale;
  obs::Counter& frames_quarantined;
  obs::Counter& bytes_in;
  obs::Counter& bytes_out;
  obs::Counter& admin_requests;

  RefereeMetrics()
      : connections_open(obs::default_registry().gauge("ustream_referee_connections_open")),
        connections_total(obs::default_registry().counter("ustream_referee_connections_total")),
        frames_accepted(obs::default_registry().counter("ustream_referee_frames_accepted_total")),
        frames_duplicate(obs::default_registry().counter("ustream_referee_frames_duplicate_total")),
        frames_stale(obs::default_registry().counter("ustream_referee_frames_stale_total")),
        frames_quarantined(
            obs::default_registry().counter("ustream_referee_frames_quarantined_total")),
        bytes_in(obs::default_registry().counter("ustream_referee_bytes_in_total")),
        bytes_out(obs::default_registry().counter("ustream_referee_bytes_out_total")),
        admin_requests(obs::default_registry().counter("ustream_referee_admin_requests_total")) {}
};

}  // namespace

class RefereeServer::Loop {
 public:
  Loop(RefereeServer& server, const PayloadSink& sink)
      : server_(server),
        config_(server.config_),
        sink_(sink),
        state_(config_.sites, config_.expected_kind, config_.dedup) {
    wire_.bytes_per_site.assign(config_.sites, 0);
  }

  Result run() {
    using clock = std::chrono::steady_clock;
    const bool has_deadline = config_.timeout.count() > 0;
    const auto deadline = clock::now() + config_.timeout;
    bool timed_out = false;

    while (!server_.stop_.load(std::memory_order_acquire)) {
      if (complete()) break;
      int poll_ms = -1;
      if (has_deadline) {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - clock::now());
        if (left.count() <= 0) {
          timed_out = true;
          break;
        }
        poll_ms = static_cast<int>(std::min<long long>(left.count(),
                                                       std::numeric_limits<int>::max()));
      }

      const bool admin = server_.admin_listener_.valid();
      std::vector<pollfd> pfds;
      pfds.reserve(3 + conns_.size() + admin_conns_.size());
      pfds.push_back({server_.wake_.read_fd(), POLLIN, 0});
      pfds.push_back({server_.listener_.fd(), POLLIN, 0});
      if (admin) pfds.push_back({server_.admin_listener_.fd(), POLLIN, 0});
      const std::size_t conns_base = pfds.size();
      for (const Conn& c : conns_) {
        short events = 0;
        if (!c.closed) events |= POLLIN;
        if (!c.out.empty()) events |= POLLOUT;
        pfds.push_back({c.sock.fd(), events, 0});
      }
      const std::size_t admin_base = pfds.size();
      for (const AdminConn& c : admin_conns_) {
        short events = 0;
        if (!c.responded && !c.closed) events |= POLLIN;
        if (!c.out.empty()) events |= POLLOUT;
        pfds.push_back({c.sock.fd(), events, 0});
      }

      const int n = ::poll(pfds.data(), pfds.size(), poll_ms);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw TransportError(std::string("poll: ") + std::strerror(errno));
      }

      if (pfds[0].revents != 0) server_.wake_.drain();
      // Connections accepted now were not in this round's pfds — bound the
      // revents scans to the conns that were actually polled.
      const std::size_t polled = conns_.size();
      const std::size_t admin_polled = admin_conns_.size();
      if (pfds[1].revents != 0) accept_new();
      if (admin && pfds[2].revents != 0) accept_admin();
      for (std::size_t i = 0; i < polled; ++i) {
        const short revents = pfds[conns_base + i].revents;
        if (revents == 0) continue;
        if ((revents & POLLOUT) != 0) flush(conns_[i]);
        if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0 && !conns_[i].closed) {
          read_from(conns_[i]);
        }
      }
      for (std::size_t i = 0; i < admin_polled; ++i) {
        const short revents = pfds[admin_base + i].revents;
        if (revents == 0) continue;
        if ((revents & POLLOUT) != 0) flush_admin(admin_conns_[i]);
        if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0 &&
            !admin_conns_[i].responded && !admin_conns_[i].closed) {
          read_admin(admin_conns_[i]);
        }
      }
      // A connection is finished when the peer is gone and every ack owed
      // to it has been flushed (or can never be).
      std::erase_if(conns_, [this](const Conn& c) {
        if (c.closed && c.out.empty()) {
          metrics_.connections_open.sub(1);
          return true;
        }
        return false;
      });
      // Admin clients close as soon as their one response is flushed.
      std::erase_if(admin_conns_, [](const AdminConn& c) {
        return c.closed || (c.responded && c.out.empty());
      });
    }

    // The loop owns the open-connections gauge: settle it for connections
    // still alive at exit so a later collection starts from zero.
    metrics_.connections_open.sub(static_cast<std::int64_t>(conns_.size()));

    // Exhaustion is a CLIENT-side budget; the server cannot know it, so it
    // never marks sites exhausted — missing sites are reported plain.
    state_.finalize(std::numeric_limits<std::uint32_t>::max());
    Result res;
    res.report = std::move(state_.report());
    res.wire = std::move(wire_);
    res.timed_out = timed_out && !res.report.complete();
    return res;
  }

 private:
  bool complete() const {
    if (!state_.all_reported()) return false;
    return std::all_of(conns_.begin(), conns_.end(),
                       [](const Conn& c) { return c.out.empty(); });
  }

  void accept_new() {
    for (;;) {
      Socket sock = accept_conn(server_.listener_);
      if (!sock.valid()) break;
      Conn conn;
      conn.sock = std::move(sock);
      conns_.push_back(std::move(conn));
      metrics_.connections_open.add(1);
      metrics_.connections_total.add(1);
    }
  }

  void accept_admin() {
    for (;;) {
      Socket sock = accept_conn(server_.admin_listener_);
      if (!sock.valid()) break;
      AdminConn conn;
      conn.sock = std::move(sock);
      admin_conns_.push_back(std::move(conn));
    }
  }

  void read_admin(AdminConn& conn) {
    char buf[1024];
    for (;;) {
      const ssize_t n = ::recv(conn.sock.fd(), buf, sizeof(buf), 0);
      if (n > 0) {
        conn.in.append(buf, static_cast<std::size_t>(n));
        if (conn.in.size() > 4096) {  // no legitimate request is this long
          conn.closed = true;
          return;
        }
        const std::size_t eol = conn.in.find('\n');
        if (eol != std::string::npos) {
          respond_admin(conn, conn.in.substr(0, eol));
          return;
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      conn.closed = true;  // EOF before a full request line
      return;
    }
  }

  void respond_admin(AdminConn& conn, std::string request) {
    while (!request.empty() && (request.back() == '\r' || request.back() == ' ')) {
      request.pop_back();
    }
    metrics_.admin_requests.add(1);
    if (request == "GET /metrics") {
      conn.out = obs::render_prometheus(obs::default_registry().snapshot());
    } else if (request == "GET /metrics.json") {
      conn.out = obs::render_json(obs::default_registry().snapshot()) + "\n";
    } else if (request == "GET /health") {
      conn.out = "ok\n";
    } else {
      conn.out = "error: unknown endpoint (try GET /metrics, GET /metrics.json, "
                 "GET /health)\n";
    }
    conn.responded = true;
    flush_admin(conn);
  }

  void flush_admin(AdminConn& conn) {
    while (!conn.out.empty()) {
      const ssize_t n =
          ::send(conn.sock.fd(), conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        conn.closed = true;
        conn.out.clear();
        return;
      }
      metrics_.bytes_out.add(static_cast<std::uint64_t>(n));
      conn.out.erase(0, static_cast<std::size_t>(n));
    }
  }

  void flush(Conn& conn) {
    while (!conn.out.empty()) {
      const ssize_t n =
          ::send(conn.sock.fd(), conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        conn.closed = true;  // peer gone; the ack is undeliverable
        conn.out.clear();
        return;
      }
      metrics_.bytes_out.add(static_cast<std::uint64_t>(n));
      conn.out.erase(conn.out.begin(), conn.out.begin() + n);
    }
  }

  void read_from(Conn& conn) {
    std::uint8_t buf[16384];
    for (;;) {
      const ssize_t n = ::recv(conn.sock.fd(), buf, sizeof(buf), 0);
      if (n > 0) {
        metrics_.bytes_in.add(static_cast<std::uint64_t>(n));
        conn.in.insert(conn.in.end(), buf, buf + n);
        if (!parse_frames(conn)) return;  // protocol violation: conn dropped
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      // EOF or hard error. Bytes stranded mid-frame are a truncated
      // transmission — a killed site. Feeding them to ingest() quarantines
      // them through the same frame-layer verdict as a truncating
      // FaultyChannel delivery.
      if (conn.expected.has_value() || !conn.in.empty()) {
        state_.ingest(std::span<const std::uint8_t>(conn.in));
        metrics_.frames_quarantined.add(1);  // truncated transmission
        conn.in.clear();
      }
      conn.closed = true;
      return;
    }
  }

  // Consumes every complete [len][frame] unit in conn.in. Returns false if
  // the connection was dropped for announcing an oversized frame.
  bool parse_frames(Conn& conn) {
    std::size_t offset = 0;
    for (;;) {
      if (!conn.expected.has_value()) {
        if (conn.in.size() - offset < 4) break;
        const std::uint32_t len = read_u32le(conn.in.data() + offset);
        offset += 4;
        if (len > config_.max_frame_bytes) {
          // Not a reassembly state we can recover from: the stream is
          // desynchronized. Count it and drop the connection.
          state_.report().frames_quarantined += 1;
          metrics_.frames_quarantined.add(1);
          conn.closed = true;
          conn.in.clear();
          conn.out.clear();
          return false;
        }
        conn.expected = len;
      }
      const std::uint32_t len = *conn.expected;
      if (conn.in.size() - offset < len) break;
      ingest_frame(conn, std::span<const std::uint8_t>(conn.in.data() + offset, len));
      offset += len;
      conn.expected.reset();
    }
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<std::ptrdiff_t>(
                                        std::min(offset, conn.in.size())));
    return true;
  }

  void ingest_frame(Conn& conn, std::span<const std::uint8_t> frame_bytes) {
    wire_.messages += 1;
    wire_.total_bytes += frame_bytes.size();
    if (frame_bytes.size() > wire_.max_message_bytes) {
      wire_.max_message_bytes = frame_bytes.size();
    }
    // Attribute the transmission to its claimed site (header peek; the
    // claim is only trusted for ACCOUNTING — acceptance still goes through
    // the full CRC validation in ingest). Every observed frame for a site
    // is a real attempt on its behalf: first one a send, later ones
    // retransmissions, mirroring the in-process collector's record_send.
    if (frame_bytes.size() >= kFrameHeaderBytes && looks_like_frame(frame_bytes)) {
      const std::uint32_t site = read_u32le(frame_bytes.data() + 8);
      if (site < config_.sites) {
        wire_.bytes_per_site[site] += frame_bytes.size();
        state_.record_send(site);
      }
    }

    const CollectReport& before = state_.report();
    const std::uint64_t dup0 = before.duplicates_dropped;
    const std::uint64_t stale0 = before.stale_dropped;
    auto accepted = state_.ingest(frame_bytes);
    PushAck ack = PushAck::kQuarantined;
    if (accepted) {
      const std::size_t site = accepted->site;
      const std::uint32_t epoch = accepted->epoch;
      if (sink_(site, epoch, std::move(accepted->payload))) {
        ack = PushAck::kAccepted;
      } else {
        state_.reject_accepted(site);  // CRC collision: reopen + quarantine
        ack = PushAck::kQuarantined;
      }
    } else if (state_.report().duplicates_dropped > dup0) {
      ack = PushAck::kDuplicate;
    } else if (state_.report().stale_dropped > stale0) {
      ack = PushAck::kStale;
    }
    switch (ack) {
      case PushAck::kAccepted: metrics_.frames_accepted.add(1); break;
      case PushAck::kDuplicate: metrics_.frames_duplicate.add(1); break;
      case PushAck::kStale: metrics_.frames_stale.add(1); break;
      case PushAck::kQuarantined: metrics_.frames_quarantined.add(1); break;
    }
    conn.out.push_back(static_cast<std::uint8_t>(ack));
    flush(conn);  // usually completes inline; POLLOUT covers the rest
  }

  RefereeServer& server_;
  const RefereeServerConfig& config_;
  const PayloadSink& sink_;
  CollectState state_;
  ChannelStats wire_;
  std::vector<Conn> conns_;
  std::vector<AdminConn> admin_conns_;
  RefereeMetrics metrics_;
};

RefereeServer::RefereeServer(RefereeServerConfig config) : config_(std::move(config)) {
  USTREAM_REQUIRE(config_.sites >= 1, "need at least one site");
  listener_ = listen_tcp(config_.bind_host, config_.port);
  port_ = local_port(listener_);
  if (config_.admin_port.has_value()) {
    admin_listener_ = listen_tcp(config_.bind_host, *config_.admin_port);
    admin_port_ = local_port(admin_listener_);
  }
}

RefereeServer::Result RefereeServer::run(const PayloadSink& sink) {
  Loop loop(*this, sink);
  return loop.run();
}

void RefereeServer::request_stop() noexcept {
  stop_.store(true, std::memory_order_release);
  wake_.notify();
}

}  // namespace ustream::net
