#include "net/referee_server.h"

#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <exception>
#include <limits>
#include <list>
#include <mutex>
#include <thread>

#include "net/tcp_transport.h"
#include "obs/exposition.h"
#include "obs/metrics.h"

namespace ustream::net {

namespace {

// Little-endian u32 without alignment assumptions.
std::uint32_t read_u32le(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

// Every fd registered with the shard's EventLoop carries one of these as
// its opaque pointer, so event dispatch is a switch on `kind` plus a cast
// of `self` — no per-event container scan (the O(n)-per-round revents walk
// the old poll loop did is exactly what EventLoop retired).
enum class TagKind : std::uint8_t { kWake, kListener, kAdminListener, kSite, kAdmin };

struct FdTag {
  TagKind kind;
  void* self = nullptr;
};

}  // namespace

// One site connection mid-reassembly. `expected` is nullopt while the
// 4-byte length prefix is still incomplete (state "reading-length");
// once known, `in` accumulates until the full frame arrived. Connections
// live in a std::list so `tag.self` and `self` stay valid across
// insertions and erasures (EventLoop hands the tag pointer back verbatim).
struct RefereeServer::Conn {
  FdTag tag{TagKind::kSite, nullptr};
  Socket sock;
  std::vector<std::uint8_t> in;
  std::optional<std::uint32_t> expected;
  std::vector<std::uint8_t> out;  // pending ack bytes
  bool closed = false;            // peer gone; kept only to flush `out`
  unsigned interest = 0;          // mask currently registered with the loop
  std::list<Conn>::iterator self;
};

// Cross-shard arbiter: the one piece of state every shard shares. A slot
// holds 0 while no shard has accepted a frame for the site, else the
// winning epoch + 1. A shard that locally accepts a frame must also win
// here (under `mu`) before the payload reaches the sink; losing demotes
// the local acceptance to the duplicate/stale verdict a single sequential
// referee would have issued, which is what keeps the merge_reports() fold
// of the shard ledgers identical to the sequential ledger.
struct RefereeServer::Shared {
  Shared(std::size_t sites, DedupMode mode, bool continuous, const PayloadSink& sink)
      : mode(mode), continuous(continuous), sink(sink), slots(sites, 0) {}

  const DedupMode mode;
  const bool continuous;  // never declare completion; run to deadline/stop
  const PayloadSink& sink;
  std::mutex mu;
  std::vector<std::uint64_t> slots;  // guarded by mu; 0 = unclaimed
  std::size_t reported = 0;          // guarded by mu; sites with a claimed slot
  std::atomic<bool> complete{false};
};

namespace {

// One admin client: accumulate bytes until the first newline, answer the
// one-line request, flush, close. Admin clients never block the referee —
// they live in shard 0's event loop next to its site connections.
struct AdminConn {
  FdTag tag{TagKind::kAdmin, nullptr};
  Socket sock;
  std::string in;
  std::string out;
  bool responded = false;
  bool closed = false;
  unsigned interest = 0;
  std::list<AdminConn>::iterator self;
};

// The referee's built-in metric set (DESIGN.md §9.2): the live view of the
// ledger a CollectReport shows post-hoc. Resolved once per shard; all
// updates are single relaxed atomic ops on the default registry, so the
// admin endpoint, `ustream stats` and the serve --stats dump all read the
// same numbers. A single-shard server keeps the unlabeled series (the
// PR-5 names); a sharded one gets one series per shard via shard="k".
struct RefereeMetrics {
  obs::Gauge& connections_open;
  obs::Counter& connections_total;
  obs::Counter& frames_accepted;
  obs::Counter& frames_duplicate;
  obs::Counter& frames_stale;
  obs::Counter& frames_quarantined;
  obs::Counter& frames_delta;
  obs::Counter& frames_resync;
  obs::Counter& bytes_in;
  obs::Counter& bytes_out;
  obs::Counter& admin_requests;

  explicit RefereeMetrics(const std::string& labels)
      : connections_open(obs::default_registry().gauge("ustream_referee_connections_open", labels)),
        connections_total(
            obs::default_registry().counter("ustream_referee_connections_total", labels)),
        frames_accepted(
            obs::default_registry().counter("ustream_referee_frames_accepted_total", labels)),
        frames_duplicate(
            obs::default_registry().counter("ustream_referee_frames_duplicate_total", labels)),
        frames_stale(obs::default_registry().counter("ustream_referee_frames_stale_total", labels)),
        frames_quarantined(
            obs::default_registry().counter("ustream_referee_frames_quarantined_total", labels)),
        frames_delta(
            obs::default_registry().counter("ustream_referee_frames_delta_total", labels)),
        frames_resync(
            obs::default_registry().counter("ustream_referee_frames_resync_total", labels)),
        bytes_in(obs::default_registry().counter("ustream_referee_bytes_in_total", labels)),
        bytes_out(obs::default_registry().counter("ustream_referee_bytes_out_total", labels)),
        admin_requests(
            obs::default_registry().counter("ustream_referee_admin_requests_total", labels)) {}
};

}  // namespace

// One worker: an EventLoop over this shard's acceptor, its share of the
// site connections (whichever ones the kernel's SO_REUSEPORT hash routed
// here), its own CollectState ledger and wire stats, and — on shard 0
// only — the admin listener. No state is shared with other shards except
// RefereeServer::Shared, touched once per locally-accepted frame.
class RefereeServer::Shard {
 public:
  Shard(RefereeServer& server, std::size_t index, Shared& shared,
        std::chrono::steady_clock::time_point deadline, bool has_deadline)
      : server_(server),
        config_(server.config_),
        index_(index),
        shared_(shared),
        deadline_(deadline),
        has_deadline_(has_deadline),
        loop_(config_.backend),
        state_(config_.sites, config_.expected_kind, config_.dedup),
        metrics_(config_.shards > 1 ? "shard=\"" + std::to_string(index) + "\""
                                    : std::string{}) {
    if (config_.delta_kind.has_value()) state_.enable_deltas(*config_.delta_kind);
    wire_.bytes_per_site.assign(config_.sites, 0);
  }

  // Transplants one recovered acceptance into this shard's ledger (called
  // on shard 0 before the loops start, so the merged report shows the
  // recovered sites as reported — see RefereeServer::run).
  void preload(std::size_t site, std::uint32_t epoch, std::uint16_t group) {
    state_.restore_accepted(site, epoch, group);
  }

  void run() {
    using clock = std::chrono::steady_clock;
    WakePipe& wake = *server_.wakes_[index_];
    wake_tag_ = FdTag{TagKind::kWake, &wake};
    listener_tag_ = FdTag{TagKind::kListener, nullptr};
    admin_tag_ = FdTag{TagKind::kAdminListener, nullptr};
    loop_.add(wake.read_fd(), EventLoop::kRead, &wake_tag_);
    loop_.add(server_.listeners_[index_].fd(), EventLoop::kRead, &listener_tag_);
    const bool admin = index_ == 0 && server_.admin_listener_.valid();
    if (admin) loop_.add(server_.admin_listener_.fd(), EventLoop::kRead, &admin_tag_);

    std::vector<EventLoop::Event> events;
    while (!server_.stop_.load(std::memory_order_acquire)) {
      // Done when every site has reported on SOME shard and this shard owes
      // no acks. `flushing_` counts connections with queued ack bytes, so
      // the check is O(1) — no per-round scan of the connection table.
      if (shared_.complete.load(std::memory_order_acquire) && flushing_ == 0) break;
      int wait_ms = -1;
      if (has_deadline_) {
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(deadline_ - clock::now());
        if (left.count() <= 0) {
          timed_out = true;
          break;
        }
        wait_ms = static_cast<int>(
            std::min<long long>(left.count(), std::numeric_limits<int>::max()));
      }

      loop_.wait(events, wait_ms);
      // Each fd appears at most once per batch (poll and epoll both
      // coalesce readiness into one entry), so a connection destroyed
      // while handling its event cannot be referenced again this batch.
      for (const EventLoop::Event& ev : events) {
        const FdTag* tag = static_cast<const FdTag*>(ev.data);
        switch (tag->kind) {
          case TagKind::kWake:
            wake.drain();
            break;
          case TagKind::kListener:
            accept_new();
            break;
          case TagKind::kAdminListener:
            accept_admin();
            break;
          case TagKind::kSite:
            handle_site(*static_cast<Conn*>(tag->self), ev.events);
            break;
          case TagKind::kAdmin:
            handle_admin(*static_cast<AdminConn*>(tag->self), ev.events);
            break;
        }
      }
    }

    // The shard owns the open-connections gauge for its connections:
    // settle it for ones still alive at exit so a later collection starts
    // from zero.
    metrics_.connections_open.sub(static_cast<std::int64_t>(conns_.size()));

    // Exhaustion is a CLIENT-side budget; the server cannot know it, so it
    // never marks sites exhausted — missing sites are reported plain.
    state_.finalize(std::numeric_limits<std::uint32_t>::max());
    report = std::move(state_.report());
    wire = std::move(wire_);
  }

  CollectReport report;
  ChannelStats wire;
  bool timed_out = false;

 private:
  void accept_new() {
    for (;;) {
      Socket sock = accept_conn(server_.listeners_[index_]);
      if (!sock.valid()) break;
      conns_.emplace_back();
      Conn& conn = conns_.back();
      conn.self = std::prev(conns_.end());
      conn.tag.self = &conn;
      conn.sock = std::move(sock);
      conn.interest = EventLoop::kRead;
      loop_.add(conn.sock.fd(), conn.interest, &conn.tag);
      metrics_.connections_open.add(1);
      metrics_.connections_total.add(1);
    }
  }

  void handle_site(Conn& conn, unsigned revents) {
    if ((revents & EventLoop::kWrite) != 0) flush(conn);
    if ((revents & (EventLoop::kRead | EventLoop::kHangup | EventLoop::kError)) != 0 &&
        !conn.closed) {
      read_from(conn);
    }
    // A connection is finished when the peer is gone and every ack owed
    // to it has been flushed (or can never be).
    if (conn.closed && conn.out.empty()) {
      loop_.remove(conn.sock.fd());
      metrics_.connections_open.sub(1);
      conns_.erase(conn.self);
      return;
    }
    rearm(conn);
  }

  void rearm(Conn& conn) {
    const unsigned want = (conn.closed ? 0u : EventLoop::kRead) |
                          (conn.out.empty() ? 0u : EventLoop::kWrite);
    if (want != conn.interest) {
      loop_.modify(conn.sock.fd(), want, &conn.tag);
      conn.interest = want;
    }
  }

  void accept_admin() {
    for (;;) {
      Socket sock = accept_conn(server_.admin_listener_);
      if (!sock.valid()) break;
      admin_conns_.emplace_back();
      AdminConn& conn = admin_conns_.back();
      conn.self = std::prev(admin_conns_.end());
      conn.tag.self = &conn;
      conn.sock = std::move(sock);
      conn.interest = EventLoop::kRead;
      loop_.add(conn.sock.fd(), conn.interest, &conn.tag);
    }
  }

  void handle_admin(AdminConn& conn, unsigned revents) {
    if ((revents & EventLoop::kWrite) != 0) flush_admin(conn);
    if ((revents & (EventLoop::kRead | EventLoop::kHangup | EventLoop::kError)) != 0 &&
        !conn.responded && !conn.closed) {
      read_admin(conn);
    }
    // Admin clients close as soon as their one response is flushed.
    if (conn.closed || (conn.responded && conn.out.empty())) {
      loop_.remove(conn.sock.fd());
      admin_conns_.erase(conn.self);
      return;
    }
    const unsigned want = ((conn.responded || conn.closed) ? 0u : EventLoop::kRead) |
                          (conn.out.empty() ? 0u : EventLoop::kWrite);
    if (want != conn.interest) {
      loop_.modify(conn.sock.fd(), want, &conn.tag);
      conn.interest = want;
    }
  }

  void read_admin(AdminConn& conn) {
    char buf[1024];
    for (;;) {
      const ssize_t n = ::recv(conn.sock.fd(), buf, sizeof(buf), 0);
      if (n > 0) {
        conn.in.append(buf, static_cast<std::size_t>(n));
        if (conn.in.size() > 4096) {  // no legitimate request is this long
          conn.closed = true;
          return;
        }
        const std::size_t eol = conn.in.find('\n');
        if (eol != std::string::npos) {
          respond_admin(conn, conn.in.substr(0, eol));
          return;
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      conn.closed = true;  // EOF before a full request line
      return;
    }
  }

  void respond_admin(AdminConn& conn, std::string request) {
    while (!request.empty() && (request.back() == '\r' || request.back() == ' ')) {
      request.pop_back();
    }
    metrics_.admin_requests.add(1);
    if (request == "GET /metrics") {
      conn.out = obs::render_prometheus(obs::default_registry().snapshot());
    } else if (request == "GET /metrics.json") {
      conn.out = obs::render_json(obs::default_registry().snapshot()) + "\n";
    } else if (request == "GET /health") {
      conn.out = "ok\n";
    } else if (request.rfind("GET /query?e=", 0) == 0 ||
               request.rfind("GET /query.txt?e=", 0) == 0) {
      const bool json = request.rfind("GET /query?e=", 0) == 0;
      const std::string raw =
          request.substr(json ? 13 : 17);  // strlen of the matched prefix
      if (!config_.query_handler) {
        conn.out = "error: query endpoint disabled (no query handler)\n";
      } else {
        try {
          conn.out = config_.query_handler(raw, json);
        } catch (const std::exception& e) {
          conn.out = std::string("error: ") + e.what() + "\n";
        }
      }
    } else {
      conn.out = "error: unknown endpoint (try GET /metrics, GET /metrics.json, "
                 "GET /health, GET /query?e=EXPR)\n";
    }
    conn.responded = true;
    flush_admin(conn);
  }

  void flush_admin(AdminConn& conn) {
    while (!conn.out.empty()) {
      const ssize_t n =
          ::send(conn.sock.fd(), conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        conn.closed = true;
        conn.out.clear();
        return;
      }
      metrics_.bytes_out.add(static_cast<std::uint64_t>(n));
      conn.out.erase(0, static_cast<std::size_t>(n));
    }
  }

  void flush(Conn& conn) {
    if (conn.out.empty()) return;
    while (!conn.out.empty()) {
      const ssize_t n =
          ::send(conn.sock.fd(), conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // still owed
        if (errno == EINTR) continue;
        conn.closed = true;  // peer gone; the ack is undeliverable
        conn.out.clear();
        break;
      }
      metrics_.bytes_out.add(static_cast<std::uint64_t>(n));
      conn.out.erase(conn.out.begin(), conn.out.begin() + n);
    }
    if (conn.out.empty()) flushing_ -= 1;
  }

  void read_from(Conn& conn) {
    std::uint8_t buf[16384];
    for (;;) {
      const ssize_t n = ::recv(conn.sock.fd(), buf, sizeof(buf), 0);
      if (n > 0) {
        metrics_.bytes_in.add(static_cast<std::uint64_t>(n));
        conn.in.insert(conn.in.end(), buf, buf + n);
        if (!parse_frames(conn)) return;  // protocol violation: conn dropped
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      // EOF or hard error. Bytes stranded mid-frame are a truncated
      // transmission — a killed site. Feeding them to ingest() quarantines
      // them through the same frame-layer verdict as a truncating
      // FaultyChannel delivery.
      if (conn.expected.has_value() || !conn.in.empty()) {
        state_.ingest(std::span<const std::uint8_t>(conn.in));
        metrics_.frames_quarantined.add(1);  // truncated transmission
        conn.in.clear();
      }
      conn.closed = true;
      return;
    }
  }

  // Consumes every complete [len][frame] unit in conn.in. Returns false if
  // the connection was dropped for announcing an oversized frame.
  bool parse_frames(Conn& conn) {
    std::size_t offset = 0;
    for (;;) {
      if (!conn.expected.has_value()) {
        if (conn.in.size() - offset < 4) break;
        const std::uint32_t len = read_u32le(conn.in.data() + offset);
        offset += 4;
        if (len > config_.max_frame_bytes) {
          // Not a reassembly state we can recover from: the stream is
          // desynchronized. Count it and drop the connection.
          state_.report().frames_quarantined += 1;
          metrics_.frames_quarantined.add(1);
          conn.closed = true;
          conn.in.clear();
          if (!conn.out.empty()) {
            conn.out.clear();
            flushing_ -= 1;
          }
          return false;
        }
        conn.expected = len;
      }
      const std::uint32_t len = *conn.expected;
      if (conn.in.size() - offset < len) break;
      ingest_frame(conn, std::span<const std::uint8_t>(conn.in.data() + offset, len));
      offset += len;
      conn.expected.reset();
    }
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<std::ptrdiff_t>(
                                        std::min(offset, conn.in.size())));
    return true;
  }

  void ingest_frame(Conn& conn, std::span<const std::uint8_t> frame_bytes) {
    wire_.messages += 1;
    wire_.total_bytes += frame_bytes.size();
    if (frame_bytes.size() > wire_.max_message_bytes) {
      wire_.max_message_bytes = frame_bytes.size();
    }
    // Attribute the transmission to its claimed site (header peek; the
    // claim is only trusted for ACCOUNTING — acceptance still goes through
    // the full CRC validation in ingest). Every observed frame for a site
    // is a real attempt on its behalf: first one a send, later ones
    // retransmissions, mirroring the in-process collector's record_send.
    // The pre-ingest per-site state is captured here because a losing
    // arbiter round has to restore it (demote_accepted); an accepted frame
    // always took this path — same bytes, same site field.
    std::uint32_t prev_epoch = 0;
    bool prev_reported = false;
    std::uint16_t prev_group = 0;
    if (frame_bytes.size() >= kFrameHeaderBytes && looks_like_frame(frame_bytes)) {
      const std::uint32_t site = read_u32le(frame_bytes.data() + 8);
      if (site < config_.sites) {
        wire_.bytes_per_site[site] += frame_bytes.size();
        state_.record_send(site);
        prev_reported = state_.site_reported(site);
        prev_epoch = state_.report().per_site[site].accepted_epoch;
        prev_group = state_.report().per_site[site].group;
      }
    }

    const CollectReport& before = state_.report();
    const std::uint64_t dup0 = before.duplicates_dropped;
    const std::uint64_t stale0 = before.stale_dropped;
    const std::uint64_t resync0 = before.resyncs;
    auto accepted = state_.ingest(frame_bytes);
    const bool was_delta = accepted.has_value() && config_.delta_kind.has_value() &&
                           accepted->kind == *config_.delta_kind;
    PushAck ack = PushAck::kQuarantined;
    if (accepted) {
      ack = arbitrate(*accepted, prev_epoch, prev_reported, prev_group, frame_bytes);
    } else if (state_.report().duplicates_dropped > dup0) {
      ack = PushAck::kDuplicate;
    } else if (state_.report().stale_dropped > stale0) {
      ack = PushAck::kStale;
    } else if (state_.report().resyncs > resync0) {
      // Delta with a broken chain (gap / unreported site): tell the site to
      // re-base with a full frame.
      ack = PushAck::kResync;
    }
    switch (ack) {
      case PushAck::kAccepted:
        metrics_.frames_accepted.add(1);
        if (was_delta) metrics_.frames_delta.add(1);
        break;
      case PushAck::kDuplicate: metrics_.frames_duplicate.add(1); break;
      case PushAck::kStale: metrics_.frames_stale.add(1); break;
      case PushAck::kQuarantined: metrics_.frames_quarantined.add(1); break;
      case PushAck::kResync: metrics_.frames_resync.add(1); break;
    }
    if (conn.out.empty()) flushing_ += 1;
    conn.out.push_back(static_cast<std::uint8_t>(ack));
    flush(conn);  // usually completes inline; kWrite interest covers the rest
  }

  // A frame this shard's CollectState accepted must also win the global
  // (site, epoch) claim. Holding the mutex across the sink keeps sink
  // calls serialized in global acceptance order, so a vector-slot sink
  // observes exactly the writes a sequential referee would have made —
  // and, when durability is on, the WAL append rides the same critical
  // section, so the log order IS the acceptance order for free.
  PushAck arbitrate(CollectState::Accepted& acc, std::uint32_t prev_epoch,
                    bool prev_reported, std::uint16_t prev_group,
                    std::span<const std::uint8_t> frame_bytes) {
    const std::size_t site = acc.site;
    const std::uint64_t want = static_cast<std::uint64_t>(acc.epoch) + 1;
    std::lock_guard<std::mutex> lock(shared_.mu);
    std::uint64_t& slot = shared_.slots[site];
    if (config_.delta_kind.has_value() && acc.kind == *config_.delta_kind) {
      // A delta extends the GLOBAL chain iff the winning epoch is exactly
      // its predecessor (slot stores epoch + 1, so slot == acc.epoch; the
      // slot != 0 guard keeps an epoch-0-claiming delta from binding to an
      // unreported site). Any other slot state means another shard moved
      // the chain, or nothing is based yet — either way the local
      // acceptance demotes to the resync verdict a sequential referee
      // would have issued, and the site re-bases with a full frame.
      if (slot == 0 || slot != acc.epoch) {
        state_.demote_delta(site, prev_epoch);
        return PushAck::kResync;
      }
      if (!shared_.sink(site, acc.epoch, acc.group, acc.kind, std::move(acc.payload))) {
        // The delta did not apply (mirror mismatch / corrupt payload with a
        // colliding CRC). Retransmission cannot help; demand a full frame.
        state_.demote_delta(site, prev_epoch);
        return PushAck::kResync;
      }
      if (server_.durable_ != nullptr) {
        server_.durable_->log_accepted(static_cast<std::uint32_t>(index_),
                                       static_cast<std::uint32_t>(site), acc.epoch,
                                       frame_bytes, /*is_delta=*/true);
      }
      slot = want;
      return PushAck::kAccepted;
    }
    bool wins = false;
    bool stale = false;
    if (slot == 0) {
      wins = true;  // first acceptance anywhere — same verdict as sequential
    } else if (shared_.mode == DedupMode::kLatestWins && want > slot) {
      wins = true;
    } else if (shared_.mode == DedupMode::kLatestWins && want < slot) {
      stale = true;
    }
    if (!wins) {
      state_.demote_accepted(site, prev_epoch, prev_reported, stale, prev_group);
      return stale ? PushAck::kStale : PushAck::kDuplicate;
    }
    if (!shared_.sink(site, acc.epoch, acc.group, acc.kind, std::move(acc.payload))) {
      // CRC collision: reopen + quarantine locally. The slot keeps its
      // previous value — if an older snapshot had already been delivered,
      // the sink still holds it, and the retransmit the 'Q' ack provokes
      // will beat it again through the normal latest-wins path.
      state_.reject_accepted(site);
      return PushAck::kQuarantined;
    }
    if (server_.durable_ != nullptr) {
      // Log + commit (write to the kernel, fsync per policy) before the
      // ack byte can be queued: an acked frame is always recoverable
      // after kill -9. A crash between sink and here loses nothing — the
      // site never saw an ack, so it retries after the restart.
      server_.durable_->log_accepted(static_cast<std::uint32_t>(index_),
                                     static_cast<std::uint32_t>(site),
                                     acc.epoch, frame_bytes);
    }
    const bool first = slot == 0;
    slot = want;
    if (first) {
      shared_.reported += 1;
      if (shared_.reported == shared_.slots.size() && !shared_.continuous) {
        shared_.complete.store(true, std::memory_order_release);
        server_.notify_all();  // every shard re-checks and winds down
      }
    }
    return PushAck::kAccepted;
  }

  RefereeServer& server_;
  const RefereeServerConfig& config_;
  const std::size_t index_;
  Shared& shared_;
  const std::chrono::steady_clock::time_point deadline_;
  const bool has_deadline_;
  EventLoop loop_;
  CollectState state_;
  ChannelStats wire_;
  std::list<Conn> conns_;
  std::list<AdminConn> admin_conns_;
  RefereeMetrics metrics_;
  std::size_t flushing_ = 0;  // conns with queued ack bytes
  FdTag wake_tag_{TagKind::kWake, nullptr};
  FdTag listener_tag_{TagKind::kListener, nullptr};
  FdTag admin_tag_{TagKind::kAdminListener, nullptr};
};

RefereeServer::RefereeServer(RefereeServerConfig config) : config_(std::move(config)) {
  USTREAM_REQUIRE(config_.sites >= 1, "need at least one site");
  USTREAM_REQUIRE(config_.shards >= 1, "need at least one shard");
  USTREAM_REQUIRE(!config_.delta_kind.has_value() || config_.dedup == DedupMode::kLatestWins,
                  "the delta protocol requires latest-wins dedup");
  if (config_.wal.has_value()) {
    const RefereeServerConfig::Durability& opt = *config_.wal;
    durability::DurableLog::Options log_options;
    log_options.dir = opt.dir;
    log_options.fsync = opt.fsync;
    log_options.fsync_interval = opt.fsync_interval;
    log_options.segment_bytes = opt.segment_bytes;
    log_options.snapshot_every = opt.snapshot_every;
    if (opt.recover) {
      durability::RecoveryOptions rec;
      rec.dir = opt.dir;
      rec.sites = config_.sites;
      rec.expected_kind = config_.expected_kind;
      rec.dedup = config_.dedup;
      rec.delta_kind = config_.delta_kind;
      durable_ = std::make_unique<durability::DurableLog>(
          std::move(log_options), config_.sites,
          static_cast<std::uint32_t>(config_.shards),
          durability::recover_referee_state(rec));
    } else {
      // Fresh run: a dirty dir throws here (DurableLog's constructor) so
      // `serve` fails loudly instead of interleaving two runs' logs.
      const std::uint64_t run_id = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count());
      durable_ = std::make_unique<durability::DurableLog>(
          std::move(log_options), config_.sites,
          static_cast<std::uint32_t>(config_.shards), run_id);
    }
  }
  // Shard 0 resolves the port (possibly ephemeral); the rest join it via
  // SO_REUSEPORT so the kernel spreads incoming connections across all
  // acceptors. A single-shard server binds exactly as before.
  const bool multi = config_.shards > 1;
  listeners_.push_back(listen_tcp(config_.bind_host, config_.port, 64, multi));
  port_ = local_port(listeners_.front());
  for (std::size_t k = 1; k < config_.shards; ++k) {
    listeners_.push_back(listen_tcp(config_.bind_host, port_, 64, true));
  }
  for (std::size_t k = 0; k < config_.shards; ++k) {
    wakes_.push_back(std::make_unique<WakePipe>());
  }
  if (config_.admin_port.has_value()) {
    admin_listener_ = listen_tcp(config_.bind_host, *config_.admin_port);
    admin_port_ = local_port(admin_listener_);
  }
}

RefereeServer::Result RefereeServer::run(const PayloadSink& sink) {
  const bool has_deadline = config_.timeout.count() > 0;
  const auto deadline = std::chrono::steady_clock::now() + config_.timeout;
  Shared shared(config_.sites, config_.dedup, config_.continuous, sink);

  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(config_.shards);
  for (std::size_t k = 0; k < config_.shards; ++k) {
    shards.push_back(std::make_unique<Shard>(*this, k, shared, deadline, has_deadline));
  }

  // Recovered sites are preloaded before any loop starts: their payloads
  // reach the sink (same order-independent per-site slots), their arbiter
  // slots are claimed so re-pushes after the restart dedup exactly as
  // live duplicates would, and shard 0's ledger carries their reported
  // status into the merge_reports() fold. A site whose replayed payload
  // fails the sink (CRC-collision-grade corruption) is simply left
  // unclaimed — its pusher retries and re-collects it live.
  if (durable_ != nullptr) {
    const durability::RecoveryResult& rec = durable_->recovered();
    for (std::size_t site = 0; site < rec.sites.size(); ++site) {
      if (!rec.sites[site].has_value()) continue;
      Frame frame = frame_decode(rec.sites[site]->frame);
      if (!sink(site, frame.header.epoch, frame.header.group, frame.header.kind,
                std::move(frame.payload))) {
        continue;
      }
      std::uint32_t head = frame.header.epoch;
      std::uint16_t head_group = frame.header.group;
      // Replay the site's logged delta chain on top of the re-based mirror,
      // in log order. A delta that fails to apply ends the chain there —
      // the site's next delta then earns 'R' and a full frame re-bases it,
      // the same fallback a live chain break takes.
      for (const auto& delta_bytes : rec.sites[site]->deltas) {
        Frame delta = frame_decode(delta_bytes);
        if (!sink(site, delta.header.epoch, delta.header.group, delta.header.kind,
                  std::move(delta.payload))) {
          break;
        }
        head = delta.header.epoch;
        head_group = delta.header.group;
      }
      shared.slots[site] = static_cast<std::uint64_t>(head) + 1;
      shared.reported += 1;
      shards[0]->preload(site, head, head_group);
    }
    if (shared.reported == shared.slots.size() && !shared.continuous) {
      shared.complete.store(true, std::memory_order_release);
    }
  }

  // Shard 0 runs on the calling thread — a single-shard server spawns no
  // threads at all, preserving the original referee exactly. A shard that
  // throws stops the others; the first error is rethrown after the join.
  std::vector<std::exception_ptr> errors(config_.shards);
  std::vector<std::thread> threads;
  threads.reserve(config_.shards - 1);
  for (std::size_t k = 1; k < config_.shards; ++k) {
    threads.emplace_back([this, &shards, &errors, k] {
      try {
        shards[k]->run();
      } catch (...) {
        errors[k] = std::current_exception();
        stop_.store(true, std::memory_order_release);
        notify_all();
      }
    });
  }
  try {
    shards[0]->run();
  } catch (...) {
    errors[0] = std::current_exception();
    stop_.store(true, std::memory_order_release);
    notify_all();
  }
  for (std::thread& t : threads) t.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  Result res;
  std::vector<CollectReport> parts;
  parts.reserve(config_.shards);
  bool any_timed_out = false;
  res.wire.bytes_per_site.assign(config_.sites, 0);
  for (auto& shard : shards) {
    parts.push_back(shard->report);
    any_timed_out = any_timed_out || shard->timed_out;
    res.wire.messages += shard->wire.messages;
    res.wire.total_bytes += shard->wire.total_bytes;
    res.wire.max_message_bytes =
        std::max(res.wire.max_message_bytes, shard->wire.max_message_bytes);
    for (std::size_t s = 0; s < config_.sites; ++s) {
      res.wire.bytes_per_site[s] += shard->wire.bytes_per_site[s];
    }
    res.shards.push_back(ShardObservation{std::move(shard->report), std::move(shard->wire)});
  }
  res.report = merge_reports(parts);
  res.timed_out = any_timed_out && !res.report.complete();
  if (durable_ != nullptr) {
    durable_->sync_all();  // clean shutdown: everything logged is on disk
    res.durability.enabled = true;
    res.durability.recovered = config_.wal->recover;
    res.durability.sites_recovered = durable_->recovered().sites_recovered();
    res.durability.frames_replayed = durable_->recovered().frames_replayed;
    res.durability.records_logged = durable_->records_logged();
    res.durability.bytes_logged = durable_->bytes_logged();
    res.durability.fsyncs = durable_->fsyncs();
    res.durability.snapshots = durable_->snapshots_written();
    if (config_.wal->recover) {
      res.durability.recovery_summary = durable_->recovered().summary();
    }
  }
  return res;
}

void RefereeServer::notify_all() noexcept {
  for (const auto& wake : wakes_) wake->notify();
}

void RefereeServer::request_stop() noexcept {
  stop_.store(true, std::memory_order_release);
  notify_all();
}

}  // namespace ustream::net
