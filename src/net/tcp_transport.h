// TcpTransport — the site side of the paper's "one message to the referee",
// over a real socket.
//
// Implements the same Transport interface the protocols are written
// against (distributed/transport.h), so DistributedRun and the CLI push
// path speak to a remote RefereeServer exactly as they speak to the
// in-process Channel. Wire protocol, shared with referee_server.h:
//
//   client -> server :  [u32 LE length][version-1 CRC frame bytes]   (repeat)
//   server -> client :  one ack byte per frame, in order:
//                         'A' accepted   'D' duplicate   'S' stale
//                         'Q' quarantined (failed CRC/decode/kind/site)
//                         'R' resync (delta chain broken; send a full frame)
//
// The length prefix delimits frames on the byte stream; everything about
// integrity stays a frame-layer verdict (common/frame.h) so the server
// quarantines corruption identically to the in-process referee.
//
// Accounting contract (DESIGN.md §6.2): ChannelStats counts every wire
// transmission ATTEMPT — a retransmission after a dropped connection or a
// quarantine ack is a real message the model must pay for, exactly as
// Channel/FaultyChannel count every send(). Connect retries that never get
// as far as writing the frame cost no message bytes and are tracked
// separately (connect_attempts).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "distributed/transport.h"
#include "net/socket.h"

namespace ustream::net {

// Server's frame-layer verdict, echoed to the client. Any ack means the
// bytes reached the referee; only kAccepted means they changed its state.
enum class PushAck : std::uint8_t {
  kAccepted = 'A',
  kDuplicate = 'D',
  kStale = 'S',
  kQuarantined = 'Q',
  // Continuous mode only: the delta frame did not extend the site's chain
  // (gap, unreported site, or the referee demoted it). NOT retried by
  // send_with_ack — retransmitting the same delta cannot help; the caller
  // must re-base with a full frame at the next epoch.
  kResync = 'R',
};

const char* push_ack_name(PushAck ack) noexcept;

struct TcpTransportConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  // Connect retry schedule: capped exponential, base * 2^(attempt-1)
  // clamped to max — the same shape as the referee's RetryPolicy.
  std::uint32_t max_connect_attempts = 10;
  std::chrono::microseconds base_backoff{20'000};
  std::chrono::microseconds max_backoff{1'000'000};

  std::chrono::milliseconds connect_timeout{1'000};
  std::chrono::milliseconds io_timeout{5'000};

  // Retransmission budget per send(): how many times the frame is put on
  // the wire before the send is declared undeliverable.
  std::uint32_t max_send_attempts = 4;
};

class TcpTransport final : public Transport {
 public:
  TcpTransport(std::size_t sites, TcpTransportConfig config);

  // Site -> referee over TCP. Reconnects with capped-exponential backoff,
  // retransmits on connection loss or quarantine ack, and records every
  // transmission in ChannelStats. Throws TransportError once both the
  // connect and retransmission budgets are spent. Thread-safe.
  void send(std::size_t from_site, std::vector<std::uint8_t> message) override;

  // Same as send() but hands back the server's frame-layer verdict for the
  // attempt that ended the exchange (the CLI push command reports it).
  PushAck send_with_ack(std::size_t from_site, std::span<const std::uint8_t> message);

  // Client side has no inbox: the referee is at the other end of the wire.
  std::vector<std::vector<std::uint8_t>> drain() override { return {}; }

  ChannelStats stats() const override;
  std::size_t num_sites() const noexcept override { return sites_; }

  // Connections dialed (incl. reconnects) — visible so tests can assert
  // the backoff path really ran.
  std::uint64_t connect_attempts() const;

 private:
  // Ensures conn_ is connected, dialing with backoff. Caller holds mu_.
  void ensure_connected_locked();
  void record_attempt_locked(std::size_t from_site, std::size_t bytes);

  const std::size_t sites_;
  const TcpTransportConfig config_;

  mutable std::mutex mu_;
  Socket conn_;
  ChannelStats stats_;
  std::uint64_t connect_attempts_ = 0;
};

}  // namespace ustream::net
