#include "net/tcp_transport.h"

#include <thread>

#include "common/error.h"
#include "distributed/collect.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ustream::net {

const char* push_ack_name(PushAck ack) noexcept {
  switch (ack) {
    case PushAck::kAccepted: return "accepted";
    case PushAck::kDuplicate: return "duplicate";
    case PushAck::kStale: return "stale";
    case PushAck::kQuarantined: return "quarantined";
    case PushAck::kResync: return "resync";
  }
  return "unknown";
}

TcpTransport::TcpTransport(std::size_t sites, TcpTransportConfig config)
    : sites_(sites), config_(std::move(config)) {
  USTREAM_REQUIRE(sites_ >= 1, "need at least one site");
  USTREAM_REQUIRE(config_.port != 0, "TcpTransport needs a referee port");
  USTREAM_REQUIRE(config_.max_send_attempts >= 1, "need at least one send attempt");
  stats_.bytes_per_site.assign(sites_, 0);
}

void TcpTransport::ensure_connected_locked() {
  if (conn_.valid()) return;
  // Same capped-exponential shape as the referee's RetryPolicy, reusing
  // backoff_delay so both sides of the wire share one schedule definition.
  RetryPolicy schedule;
  schedule.base_backoff = config_.base_backoff;
  schedule.max_backoff = config_.max_backoff;
  std::string last_error;
  for (std::uint32_t attempt = 0; attempt < config_.max_connect_attempts; ++attempt) {
    if (attempt > 0) std::this_thread::sleep_for(backoff_delay(schedule, attempt));
    ++connect_attempts_;
    USTREAM_COUNTER_ADD("ustream_net_connects_total", 1);
    try {
      conn_ = connect_tcp(config_.host, config_.port, config_.connect_timeout,
                          config_.io_timeout);
      return;
    } catch (const TransportError& e) {
      last_error = e.what();
    }
  }
  throw TransportError("referee unreachable after " +
                       std::to_string(config_.max_connect_attempts) +
                       " connect attempts (" + last_error + ")");
}

void TcpTransport::record_attempt_locked(std::size_t from_site, std::size_t bytes) {
  USTREAM_COUNTER_ADD("ustream_net_tx_bytes_total", bytes);
  stats_.messages += 1;
  stats_.total_bytes += bytes;
  if (bytes > stats_.max_message_bytes) stats_.max_message_bytes = bytes;
  stats_.bytes_per_site[from_site] += bytes;
}

void TcpTransport::send(std::size_t from_site, std::vector<std::uint8_t> message) {
  send_with_ack(from_site, message);
}

PushAck TcpTransport::send_with_ack(std::size_t from_site,
                                    std::span<const std::uint8_t> message) {
  if (from_site >= sites_) {
    throw ProtocolError("send from unregistered site " + std::to_string(from_site) +
                        " (transport has " + std::to_string(sites_) + " sites)");
  }
  USTREAM_REQUIRE(message.size() <= 0xffffffffu, "frame exceeds the u32 length prefix");
  std::vector<std::uint8_t> wire(4 + message.size());
  const auto len = static_cast<std::uint32_t>(message.size());
  wire[0] = static_cast<std::uint8_t>(len);
  wire[1] = static_cast<std::uint8_t>(len >> 8);
  wire[2] = static_cast<std::uint8_t>(len >> 16);
  wire[3] = static_cast<std::uint8_t>(len >> 24);
  std::copy(message.begin(), message.end(), wire.begin() + 4);

  const std::lock_guard<std::mutex> lock(mu_);
  std::string last_error;
  for (std::uint32_t attempt = 0; attempt < config_.max_send_attempts; ++attempt) {
    ensure_connected_locked();
    try {
      // The frame is on the wire from the first byte of send_all: charge
      // the attempt before learning its fate, exactly like FaultyChannel
      // charges a send that the network then drops.
      record_attempt_locked(from_site, message.size());
      USTREAM_TRACE_SPAN("ustream_net_push_rtt_ns");
      send_all(conn_, wire);
      std::uint8_t ack = 0;
      recv_exact(conn_, std::span<std::uint8_t>(&ack, 1));
      switch (static_cast<PushAck>(ack)) {
        case PushAck::kAccepted: return PushAck::kAccepted;
        case PushAck::kDuplicate: return PushAck::kDuplicate;
        case PushAck::kStale: return PushAck::kStale;
        case PushAck::kResync:
          // The delta's chain is broken at the referee; only a full frame
          // can fix that. Hand the verdict back instead of retrying.
          return PushAck::kResync;
        case PushAck::kQuarantined:
          // The referee saw the bytes but rejected them; retransmitting the
          // same frame is the protocol's answer to line corruption.
          last_error = "referee quarantined the frame";
          continue;
        default:
          throw TransportError("referee sent an unknown ack byte " + std::to_string(ack));
      }
    } catch (const TransportError& e) {
      // Connection died mid-exchange: drop it and let the next attempt
      // redial through the backoff schedule.
      last_error = e.what();
      conn_.close();
    }
  }
  throw TransportError("site " + std::to_string(from_site) + " frame undeliverable after " +
                       std::to_string(config_.max_send_attempts) + " attempts (" +
                       last_error + ")");
}

ChannelStats TcpTransport::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::uint64_t TcpTransport::connect_attempts() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return connect_attempts_;
}

}  // namespace ustream::net
