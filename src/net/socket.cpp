#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ustream::net {

namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

in_addr parse_host(const std::string& host) {
  in_addr addr{};
  const std::string numeric = (host == "localhost") ? "127.0.0.1" : host;
  USTREAM_REQUIRE(::inet_pton(AF_INET, numeric.c_str(), &addr) == 1,
                  "not a numeric IPv4 address: '" + host + "'");
  return addr;
}

sockaddr_in make_sockaddr(const std::string& host, std::uint16_t port) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  sa.sin_addr = parse_host(host);
  return sa;
}

// poll() one fd for `events`, retrying EINTR against the caller's deadline.
// Returns the revents mask, or 0 on timeout.
short poll_one(int fd, short events, std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    pollfd pfd{fd, events, 0};
    const int n = ::poll(&pfd, 1, static_cast<int>(std::max<long long>(left.count(), 0)));
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) throw TransportError(errno_text("poll"));
    return n == 0 ? short{0} : pfd.revents;
  }
}

void set_io_timeout(int fd, std::chrono::milliseconds io_timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(io_timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((io_timeout.count() % 1000) * 1000);
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    throw TransportError(errno_text("setsockopt(SO_RCVTIMEO/SO_SNDTIMEO)"));
  }
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.release();
  }
  return *this;
}

int Socket::release() noexcept {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void set_nonblocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw TransportError(errno_text("fcntl(F_GETFL)"));
  const int next = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, next) < 0) throw TransportError(errno_text("fcntl(F_SETFL)"));
}

Socket listen_tcp(const std::string& host, std::uint16_t port, int backlog,
                  bool reuse_port) {
  const sockaddr_in sa = make_sockaddr(host, port);
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw TransportError(errno_text("socket"));
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuse_port &&
      ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
    throw TransportError(errno_text("setsockopt(SO_REUSEPORT)"));
  }
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
    throw TransportError(errno_text(("bind " + host + ":" + std::to_string(port)).c_str()));
  }
  if (::listen(sock.fd(), backlog) != 0) throw TransportError(errno_text("listen"));
  set_nonblocking(sock.fd(), true);
  return sock;
}

std::uint16_t local_port(const Socket& sock) {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    throw TransportError(errno_text("getsockname"));
  }
  return ntohs(sa.sin_port);
}

Socket connect_tcp(const std::string& host, std::uint16_t port,
                   std::chrono::milliseconds timeout,
                   std::chrono::milliseconds io_timeout) {
  const sockaddr_in sa = make_sockaddr(host, port);
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw TransportError(errno_text("socket"));
  set_nonblocking(sock.fd(), true);
  const int rc = ::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      throw TransportError(errno_text(
          ("connect " + host + ":" + std::to_string(port)).c_str()));
    }
    const short revents = poll_one(sock.fd(), POLLOUT, timeout);
    if (revents == 0) {
      throw TransportError("connect " + host + ":" + std::to_string(port) + ": timed out");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      throw TransportError("connect " + host + ":" + std::to_string(port) + ": " +
                           std::strerror(err != 0 ? err : errno));
    }
  }
  // Client I/O is deliberately blocking-with-timeout: the push path is a
  // simple request/ack exchange and gains nothing from its own poll loop.
  set_nonblocking(sock.fd(), false);
  set_io_timeout(sock.fd(), io_timeout);
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Socket accept_conn(const Socket& listener) {
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED || errno == EINTR) {
      return Socket{};
    }
    throw TransportError(errno_text("accept"));
  }
  Socket sock(fd);
  set_nonblocking(sock.fd(), true);
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

void send_all(const Socket& sock, std::span<const std::uint8_t> bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(sock.fd(), bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw TransportError("send: timed out");
      }
      throw TransportError(errno_text("send"));
    }
    sent += static_cast<std::size_t>(n);
  }
}

void recv_exact(const Socket& sock, std::span<std::uint8_t> bytes) {
  std::size_t got = 0;
  while (got < bytes.size()) {
    const ssize_t n = ::recv(sock.fd(), bytes.data() + got, bytes.size() - got, 0);
    if (n == 0) throw TransportError("recv: connection closed by peer");
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw TransportError("recv: timed out");
      }
      throw TransportError(errno_text("recv"));
    }
    got += static_cast<std::size_t>(n);
  }
}

WakePipe::WakePipe() {
  int fds[2];
  if (::pipe(fds) != 0) throw TransportError(errno_text("pipe"));
  read_end_ = Socket(fds[0]);
  write_end_ = Socket(fds[1]);
  set_nonblocking(read_end_.fd(), true);
  set_nonblocking(write_end_.fd(), true);
}

void WakePipe::notify() noexcept {
  const std::uint8_t byte = 1;
  // A full pipe already guarantees a pending wakeup; ignore the result.
  [[maybe_unused]] const ssize_t n = ::write(write_end_.fd(), &byte, 1);
}

void WakePipe::drain() noexcept {
  std::uint8_t buf[64];
  while (::read(read_end_.fd(), buf, sizeof(buf)) > 0) {
  }
}

}  // namespace ustream::net
