// Renderers for MetricsSnapshot: Prometheus text exposition (the referee
// admin endpoint's GET /metrics) and a one-line JSON dump (GET
// /metrics.json, `ustream stats`, and the --stats flags on serve/push).
#pragma once

#include <string>

#include "obs/metrics.h"

namespace ustream::obs {

// Prometheus text format v0.0.4: one `# TYPE` line per metric name, then
// one sample line per label set. Histograms render cumulative `le`
// buckets using common/histogram.h's log2_bucket_upper rule plus the
// usual `+Inf`/`_sum`/`_count` lines; zero-count trailing buckets are
// collapsed into `+Inf` to keep the output readable.
std::string render_prometheus(const MetricsSnapshot& snap);

// Single line of JSON:
//   {"metrics":[{"name":...,"type":"counter","value":N},
//               {"name":...,"type":"gauge","value":N},
//               {"name":...,"type":"histogram","count":N,"sum":S,
//                "buckets":[[le,cumulative],...]}]}
// One line so process-driving tests and shell pipelines can slurp it with
// a single read.
std::string render_json(const MetricsSnapshot& snap);

}  // namespace ustream::obs
