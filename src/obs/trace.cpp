#include "obs/trace.h"

namespace ustream::obs {

namespace {
thread_local TraceSpan* t_current_span = nullptr;
thread_local std::size_t t_span_depth = 0;
}  // namespace

TraceSpan::TraceSpan(const char* name, LatencyHistogram& hist) noexcept
    : name_(name), hist_(hist), start_(std::chrono::steady_clock::now()),
      parent_(t_current_span) {
  t_current_span = this;
  ++t_span_depth;
}

TraceSpan::~TraceSpan() {
  hist_.observe(elapsed_ns());
  t_current_span = parent_;
  --t_span_depth;
}

std::uint64_t TraceSpan::elapsed_ns() const noexcept {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
  return ns < 0 ? 0 : static_cast<std::uint64_t>(ns);
}

const TraceSpan* TraceSpan::current() noexcept { return t_current_span; }

std::size_t TraceSpan::depth() noexcept { return t_span_depth; }

}  // namespace ustream::obs
