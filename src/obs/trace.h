// Scoped RAII trace spans feeding the latency histograms in obs/metrics.h.
//
// A TraceSpan stamps steady_clock on construction and on destruction
// records elapsed nanoseconds into a LatencyHistogram. Spans nest: a
// thread-local stack tracks the active span so diagnostics (and tests)
// can ask "what is this thread doing right now" and how deep the
// instrumentation nesting is; entering/leaving the stack is two
// thread-local writes, no locks.
//
// Hot-path call sites use USTREAM_TRACE_SPAN("ustream_merge_reduce_ns"),
// which resolves its histogram once via a function-local static and
// compiles to nothing under -DUSTREAM_NO_METRICS. A span costs two
// steady_clock reads (~40-50ns) — cheap against a merge or a network
// round trip, too dear for a per-item loop; per-item paths use counters
// (see DESIGN.md §9's overhead contract).
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"

namespace ustream::obs {

class TraceSpan {
 public:
  // `name` must outlive the span (string literals at every call site).
  TraceSpan(const char* name, LatencyHistogram& hist) noexcept;
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  const char* name() const noexcept { return name_; }

  // Elapsed so far, without closing the span.
  std::uint64_t elapsed_ns() const noexcept;

  // Introspection for the calling thread's span stack.
  static const TraceSpan* current() noexcept;
  static std::size_t depth() noexcept;

 private:
  const char* name_;
  LatencyHistogram& hist_;
  std::chrono::steady_clock::time_point start_;
  TraceSpan* parent_;
};

}  // namespace ustream::obs

#if USTREAM_METRICS_ENABLED

#define USTREAM_OBS_CONCAT_IMPL(a, b) a##b
#define USTREAM_OBS_CONCAT(a, b) USTREAM_OBS_CONCAT_IMPL(a, b)

#define USTREAM_TRACE_SPAN(name)                                            \
  static ::ustream::obs::LatencyHistogram& USTREAM_OBS_CONCAT(              \
      ustream_obs_span_hist_, __LINE__) =                                   \
      ::ustream::obs::default_registry().histogram(name);                   \
  ::ustream::obs::TraceSpan USTREAM_OBS_CONCAT(ustream_obs_span_, __LINE__)(\
      name, USTREAM_OBS_CONCAT(ustream_obs_span_hist_, __LINE__))

#else

#define USTREAM_TRACE_SPAN(name) ((void)0)

#endif  // USTREAM_METRICS_ENABLED
