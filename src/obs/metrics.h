// Observability core: a low-overhead metrics registry every layer of the
// tree reports into (DESIGN.md §9).
//
// The functional-monitoring regime this library targets — long-lived sites
// continuously reporting to a coordinator — cannot be operated blind:
// retries, quarantines, merge times and sampler level-raises must be
// visible WHILE a collection is in flight, not post-hoc in a
// CollectReport. The contract here is:
//
//   * writers are lock-free: Counter/Gauge are single relaxed atomics,
//     the latency Histogram is a fixed array of relaxed atomics sharing
//     the power-of-two bucket rule of common/histogram.h
//     (log2_bucket_index), so a hot-path increment is one uncontended
//     `lock add` and never takes a mutex;
//   * registration is name+labels keyed and returns a reference that
//     stays valid for the registry's lifetime (node-stable storage), so
//     call sites pay the map lookup once, through a function-local
//     static;
//   * snapshot() never stops writers: it reads the atomics with relaxed
//     loads and derives each histogram's count from the bucket reads
//     themselves, so a snapshot can lag a concurrent writer but can
//     never show a count that disagrees with its own buckets (the
//     "no torn totals" rule tests/test_obs.cpp hammers under TSan).
//
// Subsystems own their metric names, not this header: the referee server
// registers its frame-verdict set, and the durability plane registers
// ustream_wal_{records,bytes,fsyncs,rotations,snapshots}_total plus
// ustream_recovery_replayed_frames_total through function-local statics
// in src/durability — the registry's pointer-stable registration is what
// makes that pattern safe (DESIGN.md §9.2 lists the full inventory).
//
// Compile-time escape hatch: building with -DUSTREAM_NO_METRICS compiles
// the USTREAM_* instrumentation macros below to nothing (the classes stay
// available so non-macro call sites still build). bench_obs measures both
// flavors and bench/run_obs_bench.sh gates enabled-but-idle metrics at
// <2% on the ingestion and merge rows.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/histogram.h"

#if defined(USTREAM_NO_METRICS)
#define USTREAM_METRICS_ENABLED 0
#else
#define USTREAM_METRICS_ENABLED 1
#endif

namespace ustream::obs {

// Monotone event count. add() is wait-free; value() is a relaxed load, so
// a reader may lag writers but never observes a decrease.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Instantaneous level (open connections, queue depth). Signed so paired
// add/sub callers cannot underflow into 2^64.
class Gauge {
 public:
  void add(std::int64_t delta) noexcept { value_.fetch_add(delta, std::memory_order_relaxed); }
  void sub(std::int64_t delta) noexcept { add(-delta); }
  void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  std::int64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Fixed-bucket latency histogram over nonnegative integers (nanoseconds by
// convention — the _ns suffix in the naming scheme). Buckets follow
// common/histogram.h's log2_bucket_index rule: bucket 0 holds 0, bucket i
// holds [2^(i-1), 2^i); values past the last bucket clamp into it (2^46 ns
// is ~19.5 hours — nothing we time legitimately overflows that).
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 48;

  void observe(std::uint64_t value) noexcept {
    const std::size_t idx = std::min(log2_bucket_index(value), kBuckets - 1);
    buckets_[idx].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  // Derived from the buckets, never stored separately — the reason a
  // concurrent snapshot cannot tear count vs buckets.
  std::uint64_t count() const noexcept {
    std::uint64_t total = 0;
    for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
    return total;
  }
  std::uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> sum_{0};
};

enum class MetricType { kCounter, kGauge, kHistogram };

// One metric read at snapshot time. `labels` is the pre-rendered
// Prometheus label body (e.g. `kind="f0"`), empty for unlabeled metrics.
struct MetricSample {
  std::string name;
  std::string labels;
  MetricType type = MetricType::kCounter;
  std::uint64_t counter_value = 0;             // kCounter
  std::int64_t gauge_value = 0;                // kGauge
  std::vector<std::uint64_t> buckets;          // kHistogram (log2 rule)
  std::uint64_t count = 0;                     // kHistogram: == sum(buckets)
  std::uint64_t sum = 0;                       // kHistogram
};

struct MetricsSnapshot {
  std::vector<MetricSample> samples;  // sorted by (name, labels)

  // nullptr when absent — callers asserting on a specific metric.
  const MetricSample* find(std::string_view name, std::string_view labels = {}) const noexcept;
  std::uint64_t counter_or(std::string_view name, std::uint64_t fallback = 0) const noexcept;
};

// Name+labels keyed registry. Registration takes a mutex (once per call
// site via the macros' function-local statics); returned references are
// stable for the registry's lifetime. A name may hold many label sets but
// only ONE metric type — re-registering under a different type throws
// InvalidArgument, keeping the exposition format unambiguous.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name, std::string_view labels = {});
  Gauge& gauge(std::string_view name, std::string_view labels = {});
  LatencyHistogram& histogram(std::string_view name, std::string_view labels = {});

  // Consistent-per-metric view of the registry without stopping writers.
  MetricsSnapshot snapshot() const;

  std::size_t size() const;

 private:
  struct Slot {
    MetricType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };
  Slot& slot(std::string_view name, std::string_view labels, MetricType type);

  mutable std::mutex mu_;
  std::map<std::pair<std::string, std::string>, Slot> slots_;
};

// The process-wide registry every instrumentation macro and built-in
// metric set reports into; the admin endpoint and the `ustream stats`
// dumps render exactly this.
MetricsRegistry& default_registry();

}  // namespace ustream::obs

// --- instrumentation macros --------------------------------------------------
//
// The only API hot paths use. Each call site resolves its metric once
// (function-local static) and then pays a single relaxed atomic op. Under
// -DUSTREAM_NO_METRICS they compile to nothing.

#if USTREAM_METRICS_ENABLED

#define USTREAM_COUNTER_ADD(name, delta)                                \
  do {                                                                  \
    static ::ustream::obs::Counter& ustream_obs_counter_ =              \
        ::ustream::obs::default_registry().counter(name);               \
    ustream_obs_counter_.add(static_cast<std::uint64_t>(delta));        \
  } while (0)

#define USTREAM_GAUGE_ADD(name, delta)                                  \
  do {                                                                  \
    static ::ustream::obs::Gauge& ustream_obs_gauge_ =                  \
        ::ustream::obs::default_registry().gauge(name);                 \
    ustream_obs_gauge_.add(static_cast<std::int64_t>(delta));           \
  } while (0)

#define USTREAM_HISTOGRAM_OBSERVE(name, value)                          \
  do {                                                                  \
    static ::ustream::obs::LatencyHistogram& ustream_obs_hist_ =        \
        ::ustream::obs::default_registry().histogram(name);             \
    ustream_obs_hist_.observe(static_cast<std::uint64_t>(value));       \
  } while (0)

#else

#define USTREAM_COUNTER_ADD(name, delta) ((void)0)
#define USTREAM_GAUGE_ADD(name, delta) ((void)0)
#define USTREAM_HISTOGRAM_OBSERVE(name, value) ((void)0)

#endif  // USTREAM_METRICS_ENABLED
