#include "obs/metrics.h"

#include <algorithm>

namespace ustream::obs {

const MetricSample* MetricsSnapshot::find(std::string_view name,
                                          std::string_view labels) const noexcept {
  for (const auto& s : samples) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter_or(std::string_view name,
                                          std::uint64_t fallback) const noexcept {
  const MetricSample* s = find(name);
  return (s != nullptr && s->type == MetricType::kCounter) ? s->counter_value : fallback;
}

MetricsRegistry::Slot& MetricsRegistry::slot(std::string_view name, std::string_view labels,
                                             MetricType type) {
  std::lock_guard<std::mutex> lock(mu_);
  auto key = std::make_pair(std::string(name), std::string(labels));
  auto it = slots_.find(key);
  if (it == slots_.end()) {
    Slot s;
    s.type = type;
    switch (type) {
      case MetricType::kCounter:
        s.counter = std::make_unique<Counter>();
        break;
      case MetricType::kGauge:
        s.gauge = std::make_unique<Gauge>();
        break;
      case MetricType::kHistogram:
        s.histogram = std::make_unique<LatencyHistogram>();
        break;
    }
    it = slots_.emplace(std::move(key), std::move(s)).first;
  }
  USTREAM_REQUIRE(it->second.type == type,
                  "metric re-registered under a different type: " + std::string(name));
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view labels) {
  return *slot(name, labels, MetricType::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view labels) {
  return *slot(name, labels, MetricType::kGauge).gauge;
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name, std::string_view labels) {
  return *slot(name, labels, MetricType::kHistogram).histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.samples.reserve(slots_.size());
  for (const auto& [key, s] : slots_) {
    MetricSample sample;
    sample.name = key.first;
    sample.labels = key.second;
    sample.type = s.type;
    switch (s.type) {
      case MetricType::kCounter:
        sample.counter_value = s.counter->value();
        break;
      case MetricType::kGauge:
        sample.gauge_value = s.gauge->value();
        break;
      case MetricType::kHistogram: {
        sample.buckets.resize(LatencyHistogram::kBuckets);
        std::uint64_t total = 0;
        for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
          sample.buckets[i] = s.histogram->bucket(i);
          total += sample.buckets[i];
        }
        // count derives from the very bucket loads above, so it can never
        // disagree with them even while writers race the snapshot.
        sample.count = total;
        sample.sum = s.histogram->sum();
        break;
      }
    }
    snap.samples.push_back(std::move(sample));
  }
  // std::map iteration is already (name, labels)-sorted; keep the invariant
  // explicit for readers of MetricsSnapshot.
  return snap;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

MetricsRegistry& default_registry() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace ustream::obs
