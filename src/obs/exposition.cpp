#include "obs/exposition.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace ustream::obs {

namespace {

void append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, std::min(static_cast<std::size_t>(n), sizeof(buf) - 1));
}

const char* type_name(MetricType t) {
  switch (t) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

// Last bucket with a nonzero count; everything past it collapses into +Inf.
std::size_t last_used_bucket(const std::vector<std::uint64_t>& buckets) {
  std::size_t last = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] != 0) last = i;
  }
  return last;
}

void render_labels(std::string& out, const std::string& labels, const char* extra = nullptr) {
  if (labels.empty() && extra == nullptr) return;
  out += '{';
  out += labels;
  if (extra != nullptr) {
    if (!labels.empty()) out += ',';
    out += extra;
  }
  out += '}';
}

}  // namespace

std::string render_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  const std::string* last_name = nullptr;
  for (const auto& s : snap.samples) {
    if (last_name == nullptr || *last_name != s.name) {
      append(out, "# TYPE %s %s\n", s.name.c_str(), type_name(s.type));
      last_name = &s.name;
    }
    switch (s.type) {
      case MetricType::kCounter:
        out += s.name;
        render_labels(out, s.labels);
        append(out, " %" PRIu64 "\n", s.counter_value);
        break;
      case MetricType::kGauge:
        out += s.name;
        render_labels(out, s.labels);
        append(out, " %" PRId64 "\n", s.gauge_value);
        break;
      case MetricType::kHistogram: {
        const std::size_t last = last_used_bucket(s.buckets);
        std::uint64_t cumulative = 0;
        char le[64];
        for (std::size_t i = 0; i <= last; ++i) {
          cumulative += s.buckets[i];
          std::snprintf(le, sizeof(le), "le=\"%" PRIu64 "\"", log2_bucket_upper(i));
          out += s.name;
          out += "_bucket";
          render_labels(out, s.labels, le);
          append(out, " %" PRIu64 "\n", cumulative);
        }
        out += s.name;
        out += "_bucket";
        render_labels(out, s.labels, "le=\"+Inf\"");
        append(out, " %" PRIu64 "\n", s.count);
        out += s.name;
        out += "_sum";
        render_labels(out, s.labels);
        append(out, " %" PRIu64 "\n", s.sum);
        out += s.name;
        out += "_count";
        render_labels(out, s.labels);
        append(out, " %" PRIu64 "\n", s.count);
        break;
      }
    }
  }
  return out;
}

std::string render_json(const MetricsSnapshot& snap) {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const auto& s : snap.samples) {
    if (!first) out += ',';
    first = false;
    append(out, "{\"name\":\"%s\"", s.name.c_str());
    if (!s.labels.empty()) append(out, ",\"labels\":\"%s\"", s.labels.c_str());
    switch (s.type) {
      case MetricType::kCounter:
        append(out, ",\"type\":\"counter\",\"value\":%" PRIu64 "}", s.counter_value);
        break;
      case MetricType::kGauge:
        append(out, ",\"type\":\"gauge\",\"value\":%" PRId64 "}", s.gauge_value);
        break;
      case MetricType::kHistogram: {
        append(out, ",\"type\":\"histogram\",\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                    ",\"buckets\":[",
               s.count, s.sum);
        const std::size_t last = last_used_bucket(s.buckets);
        std::uint64_t cumulative = 0;
        bool first_bucket = true;
        for (std::size_t i = 0; i <= last; ++i) {
          if (s.buckets[i] == 0 && cumulative == 0) continue;  // skip empty prefix
          cumulative += s.buckets[i];
          if (!first_bucket) out += ',';
          first_bucket = false;
          append(out, "[%" PRIu64 ",%" PRIu64 "]", log2_bucket_upper(i), cumulative);
        }
        out += "]}";
        break;
      }
    }
  }
  out += "]}";
  return out;
}

}  // namespace ustream::obs
