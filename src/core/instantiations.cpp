// Explicit instantiations of the sampler/estimator templates for the
// combinations the library ships, keeping client compile times down and
// catching template errors at library build time.
#include "core/coordinated_sampler.h"
#include "core/distinct_sum.h"
#include "core/f0_estimator.h"
#include "hash/hash_family.h"

namespace ustream {

template class CoordinatedSampler<PairwiseHash, Unit>;
template class CoordinatedSampler<PairwiseHash, double>;
template class CoordinatedSampler<PairwiseHash, std::uint64_t>;
template class CoordinatedSampler<TabulationHash, Unit>;
template class CoordinatedSampler<MultiplyShiftHash, Unit>;
template class CoordinatedSampler<MurmurMixHash, Unit>;

template class BasicF0Estimator<PairwiseHash>;
template class BasicF0Estimator<TabulationHash>;
template class BasicF0Estimator<MultiplyShiftHash>;
template class BasicF0Estimator<MurmurMixHash>;

template class BasicDistinctSumEstimator<PairwiseHash, double>;
template class BasicDistinctSumEstimator<PairwiseHash, std::uint64_t>;

}  // namespace ustream
