// DistinctSumEstimator — the paper's "aggregate functions over the distinct
// labels" (Theorem T3): estimate  Sum_{distinct labels x} v(x)  where v(x)
// is a per-label attribute carried by stream items. Duplicate occurrences
// of a label contribute once, which is exactly what naive summation gets
// wrong on streams with re-transmissions.
//
// Implementation: value-carrying CoordinatedSamplers; estimate is
// 2^level * (sum of sampled values), median-boosted across copies.
// The relative-error guarantee matches the paper's: for values in a bounded
// ratio (v_max / v_avg bounded), capacity Theta(rho / eps^2) suffices; the
// estimator also reports the plain distinct count and the mean value per
// distinct label.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"
#include "common/random.h"
#include "common/serialize.h"
#include "common/stats.h"
#include "core/coordinated_sampler.h"
#include "core/merge_engine.h"
#include "core/params.h"
#include "hash/pairwise.h"

namespace ustream {

template <typename Hash = PairwiseHash, typename V = double>
class BasicDistinctSumEstimator {
 public:
  using Sampler = CoordinatedSampler<Hash, V>;

  explicit BasicDistinctSumEstimator(const EstimatorParams& params) : params_(params) {
    USTREAM_REQUIRE(params.copies >= 1, "need at least one copy");
    SeedSequence seeds(params.seed);
    copies_.reserve(params.copies);
    for (std::size_t i = 0; i < params.copies; ++i) {
      copies_.emplace_back(params.capacity, seeds.child(i));
    }
  }

  BasicDistinctSumEstimator(double epsilon, double delta,
                            std::uint64_t seed = 0x5eed0123456789abULL)
      : BasicDistinctSumEstimator(EstimatorParams::for_guarantee(epsilon, delta, seed)) {}

  void add(std::uint64_t label, V value) {
    for (auto& c : copies_) c.add(label, value);
  }

  // Batched ingestion (values[i] belongs to labels[i]); bit-identical to
  // per-item add(). Copies-outer so each copy's hash stays in registers.
  void add_batch(std::span<const std::uint64_t> labels, std::span<const V> values) {
    for (auto& c : copies_) c.add_batch(labels, values);
  }

  // Median-of-copies estimate of Sum over distinct labels of v(label).
  double estimate_sum() const {
    std::vector<double> ests;
    ests.reserve(copies_.size());
    for (const auto& c : copies_) ests.push_back(c.estimate_sum());
    return median_of(std::move(ests));
  }

  // Median-of-copies estimate of the number of distinct labels.
  double estimate_distinct() const {
    std::vector<double> ests;
    ests.reserve(copies_.size());
    for (const auto& c : copies_) ests.push_back(c.estimate_distinct());
    return median_of(std::move(ests));
  }

  // Average value per distinct label (ratio of the two estimates above,
  // taken per copy before the median so the ratio is internally consistent).
  double estimate_mean() const {
    std::vector<double> ests;
    ests.reserve(copies_.size());
    for (const auto& c : copies_) {
      ests.push_back(c.size() == 0 ? 0.0
                                   : c.estimate_sum() / c.estimate_distinct());
    }
    return median_of(std::move(ests));
  }

  void merge(const BasicDistinctSumEstimator& other) {
    USTREAM_REQUIRE(copies_.size() == other.copies_.size(),
                    "merge requires estimators with identical parameters");
    for (std::size_t i = 0; i < copies_.size(); ++i) copies_[i].merge(other.copies_[i]);
  }

  // Copy-parallel merge; state identical to merge(other).
  void merge(const BasicDistinctSumEstimator& other, ThreadPool& pool) {
    USTREAM_REQUIRE(copies_.size() == other.copies_.size(),
                    "merge requires estimators with identical parameters");
    pool.parallel_for(copies_.size(),
                      [&](std::size_t i) { copies_[i].merge(other.copies_[i]); });
  }

  // Copy-parallel k-way merge; state identical to a left-to-right fold.
  void merge_many(std::span<const BasicDistinctSumEstimator* const> others,
                  ThreadPool& pool) {
    for (const BasicDistinctSumEstimator* o : others) {
      USTREAM_REQUIRE(o != nullptr && copies_.size() == o->copies_.size(),
                      "merge requires estimators with identical parameters");
    }
    pool.parallel_for(copies_.size(), [&](std::size_t i) {
      std::vector<const Sampler*> parts;
      parts.reserve(others.size());
      for (const BasicDistinctSumEstimator* o : others) parts.push_back(&o->copies_[i]);
      copies_[i].merge_many(std::span<const Sampler* const>(parts));
    });
  }

  const EstimatorParams& params() const noexcept { return params_; }
  std::size_t num_copies() const noexcept { return copies_.size(); }
  const Sampler& copy(std::size_t i) const { return copies_.at(i); }

  std::size_t bytes_used() const noexcept {
    std::size_t b = sizeof(*this);
    for (const auto& c : copies_) b += c.bytes_used();
    return b;
  }

  void serialize(ByteWriter& w) const {
    w.u8(kWireVersion);
    w.u64(params_.seed);
    w.varint(params_.capacity);
    w.varint(copies_.size());
    for (const auto& c : copies_) c.serialize(w);
  }

  std::vector<std::uint8_t> serialize() const {
    ByteWriter w;
    serialize(w);
    return w.take();
  }

  static BasicDistinctSumEstimator deserialize(ByteReader& r) {
    if (r.u8() != kWireVersion) throw SerializationError("bad estimator version");
    EstimatorParams p;
    p.seed = r.u64();
    p.capacity = r.varint();
    p.copies = r.varint();
    if (p.copies == 0 || p.copies > 4096) throw SerializationError("bad copy count");
    BasicDistinctSumEstimator est(p);
    est.copies_.clear();
    for (std::size_t i = 0; i < p.copies; ++i) {
      est.copies_.push_back(Sampler::deserialize(r));
      if (est.copies_.back().capacity() != p.capacity)
        throw SerializationError("copy capacity mismatch");
    }
    return est;
  }

  static BasicDistinctSumEstimator deserialize(std::span<const std::uint8_t> bytes) {
    ByteReader r(bytes);
    auto e = deserialize(r);
    if (!r.done()) throw SerializationError("trailing bytes after estimator");
    return e;
  }

 private:
  static constexpr std::uint8_t kWireVersion = 2;

  EstimatorParams params_;
  std::vector<Sampler> copies_;
};

using DistinctSumEstimator = BasicDistinctSumEstimator<PairwiseHash, double>;

}  // namespace ustream
