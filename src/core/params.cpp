#include "core/params.h"

#include <cmath>

#include "common/error.h"

namespace ustream {

std::size_t EstimatorParams::copies_for_delta(double delta) {
  USTREAM_REQUIRE(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
  // Median of r copies, each failing w.p. p <= 1/3: failure requires >= r/2
  // failures; Chernoff gives Pr <= exp(-r * D(1/2 || 1/3)) with
  // D(1/2||1/3) ~= 0.0589. r = ceil(ln(1/delta)/0.0589) is sufficient; we
  // use the conventional 18*ln(1/delta) styled constant divided for
  // practicality: 12*ln(1/delta) rounded up to odd.
  const double r = 12.0 * std::log(1.0 / delta);
  auto copies = static_cast<std::size_t>(std::ceil(r));
  if (copies < 1) copies = 1;
  if (copies % 2 == 0) ++copies;
  return copies;
}

std::size_t EstimatorParams::capacity_for_epsilon(double epsilon, double capacity_constant) {
  USTREAM_REQUIRE(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
  USTREAM_REQUIRE(capacity_constant > 0.0, "capacity constant must be positive");
  const double c = capacity_constant / (epsilon * epsilon);
  auto capacity = static_cast<std::size_t>(std::ceil(c));
  return capacity < 4 ? 4 : capacity;
}

EstimatorParams EstimatorParams::for_guarantee(double epsilon, double delta, std::uint64_t seed,
                                               double capacity_constant) {
  EstimatorParams p;
  p.capacity = capacity_for_epsilon(epsilon, capacity_constant);
  p.copies = copies_for_delta(delta);
  p.seed = seed;
  return p;
}

}  // namespace ustream
