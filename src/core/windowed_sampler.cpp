#include "core/windowed_sampler.h"

#include <cmath>

namespace ustream {

WindowedF0Sampler::WindowedF0Sampler(std::size_t capacity, std::uint64_t seed)
    : hash_(seed), seed_(seed), capacity_(capacity),
      levels_(static_cast<std::size_t>(kMaxLevel) + 1) {
  USTREAM_REQUIRE(capacity >= 1, "windowed sampler capacity must be >= 1");
}

void WindowedF0Sampler::touch_level(Level& level, std::uint64_t label, std::uint64_t ts) {
  const auto key = std::make_pair(ts, seq_);
  auto it = level.latest.find(label);
  if (it != level.latest.end()) {
    // Refresh recency: drop the stale position.
    level.by_recency.erase(it->second);
    it->second = key;
  } else {
    level.latest.emplace(label, key);
  }
  level.by_recency.emplace(key, label);
  if (level.by_recency.size() > capacity_) {
    const auto oldest = level.by_recency.begin();
    level.evict_horizon = std::max(level.evict_horizon, oldest->first.first);
    level.ever_evicted = true;
    level.latest.erase(oldest->second);
    level.by_recency.erase(oldest);
  }
}

void WindowedF0Sampler::add(std::uint64_t label, std::uint64_t timestamp) {
  USTREAM_REQUIRE(timestamp >= last_ts_, "timestamps must be non-decreasing");
  last_ts_ = timestamp;
  ++seq_;
  ++items_;
  const int lambda = std::min(hash_level(hash_(label), PairwiseHash::kBits), kMaxLevel);
  for (int l = 0; l <= lambda; ++l) {
    touch_level(levels_[static_cast<std::size_t>(l)], label, timestamp);
  }
}

int WindowedF0Sampler::level_for_window(std::uint64_t window_start) const {
  for (int l = 0; l <= kMaxLevel; ++l) {
    const Level& level = levels_[static_cast<std::size_t>(l)];
    // Valid if nothing with timestamp >= window_start was ever evicted.
    if (!level.ever_evicted || level.evict_horizon < window_start) return l;
  }
  return kMaxLevel;
}

double WindowedF0Sampler::estimate_distinct(std::uint64_t window_start) const {
  const int l = level_for_window(window_start);
  const Level& level = levels_[static_cast<std::size_t>(l)];
  const auto first =
      level.by_recency.lower_bound(std::make_pair(window_start, std::uint64_t{0}));
  const auto count = static_cast<double>(
      std::distance(first, level.by_recency.end()));
  return count * std::ldexp(1.0, l);
}

std::size_t WindowedF0Sampler::bytes_used() const noexcept {
  std::size_t bytes = sizeof(*this);
  for (const auto& level : levels_) {
    // Node-based containers: approximate per-entry overheads.
    bytes += level.by_recency.size() * (sizeof(std::pair<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t>) + 4 * sizeof(void*));
    bytes += level.latest.size() * (sizeof(std::pair<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>) + 2 * sizeof(void*));
  }
  return bytes;
}

WindowedF0Estimator::WindowedF0Estimator(const EstimatorParams& params) {
  USTREAM_REQUIRE(params.copies >= 1, "need at least one copy");
  SeedSequence seeds(params.seed);
  copies_.reserve(params.copies);
  for (std::size_t i = 0; i < params.copies; ++i) {
    copies_.emplace_back(params.capacity, seeds.child(i));
  }
}

std::size_t WindowedF0Estimator::bytes_used() const noexcept {
  std::size_t b = sizeof(*this);
  for (const auto& c : copies_) b += c.bytes_used();
  return b;
}

}  // namespace ustream
