#include "core/windowed_sampler.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace ustream {

WindowedF0Sampler::WindowedF0Sampler(std::size_t capacity, std::uint64_t seed)
    : hash_(seed), seed_(seed), capacity_(capacity),
      levels_(static_cast<std::size_t>(kMaxLevel) + 1) {
  USTREAM_REQUIRE(capacity >= 1, "windowed sampler capacity must be >= 1");
}

void WindowedF0Sampler::touch_level(Level& level, std::uint64_t label, std::uint64_t ts) {
  const auto key = std::make_pair(ts, seq_);
  auto it = level.latest.find(label);
  if (it != level.latest.end()) {
    // Refresh recency: drop the stale position.
    level.by_recency.erase(it->second);
    it->second = key;
  } else {
    level.latest.emplace(label, key);
  }
  level.by_recency.emplace(key, label);
  if (level.by_recency.size() > capacity_) {
    const auto oldest = level.by_recency.begin();
    level.evict_horizon = std::max(level.evict_horizon, oldest->first.first);
    level.ever_evicted = true;
    level.latest.erase(oldest->second);
    level.by_recency.erase(oldest);
  }
}

void WindowedF0Sampler::add(std::uint64_t label, std::uint64_t timestamp) {
  apply(label, timestamp, seq_ + 1);
}

void WindowedF0Sampler::apply(std::uint64_t label, std::uint64_t timestamp,
                              std::uint64_t seq) {
  USTREAM_REQUIRE(timestamp >= last_ts_, "timestamps must be non-decreasing");
  USTREAM_REQUIRE(seq > seq_, "op sequence must be strictly increasing");
  last_ts_ = timestamp;
  seq_ = seq;
  ++items_;
  const int lambda = std::min(hash_level(hash_(label), PairwiseHash::kBits), kMaxLevel);
  for (int l = 0; l <= lambda; ++l) {
    touch_level(levels_[static_cast<std::size_t>(l)], label, timestamp);
  }
}

int WindowedF0Sampler::level_for_window(std::uint64_t window_start) const {
  for (int l = 0; l <= kMaxLevel; ++l) {
    const Level& level = levels_[static_cast<std::size_t>(l)];
    // Valid if nothing with timestamp >= window_start was ever evicted.
    if (!level.ever_evicted || level.evict_horizon < window_start) return l;
  }
  return kMaxLevel;
}

double WindowedF0Sampler::estimate_distinct(std::uint64_t window_start) const {
  const int l = level_for_window(window_start);
  const Level& level = levels_[static_cast<std::size_t>(l)];
  const auto first =
      level.by_recency.lower_bound(std::make_pair(window_start, std::uint64_t{0}));
  const auto count = static_cast<double>(
      std::distance(first, level.by_recency.end()));
  return count * std::ldexp(1.0, l);
}

std::vector<std::uint64_t> WindowedF0Sampler::labels_in_window(
    int level, std::uint64_t window_start) const {
  const Level& lvl = levels_.at(static_cast<std::size_t>(level));
  std::vector<std::uint64_t> out;
  for (auto it = lvl.by_recency.lower_bound(std::make_pair(window_start, std::uint64_t{0}));
       it != lvl.by_recency.end(); ++it) {
    out.push_back(it->second);
  }
  return out;
}

// Wire layout: u8 version, u64 seed, varint capacity, varint last_ts,
// varint seq, varint items, then per level 0..kMaxLevel: u8 ever_evicted,
// varint evict_horizon, varint count, and the entries in by_recency order
// as (varint ts-delta from the previous entry, varint seq, varint label).
void WindowedF0Sampler::serialize(ByteWriter& w) const {
  w.u8(kSamplerWireVersion);
  w.u64(seed_);
  w.varint(capacity_);
  w.varint(last_ts_);
  w.varint(seq_);
  w.varint(items_);
  for (const Level& level : levels_) {
    w.u8(level.ever_evicted ? 1 : 0);
    w.varint(level.evict_horizon);
    w.varint(level.by_recency.size());
    std::uint64_t prev_ts = 0;
    for (const auto& [key, label] : level.by_recency) {
      w.varint(key.first - prev_ts);
      prev_ts = key.first;
      w.varint(key.second);
      w.varint(label);
    }
  }
}

std::vector<std::uint8_t> WindowedF0Sampler::serialize() const {
  ByteWriter w;
  serialize(w);
  return w.take();
}

WindowedF0Sampler WindowedF0Sampler::deserialize(ByteReader& r) {
  if (r.u8() != kSamplerWireVersion)
    throw SerializationError("bad windowed sampler version");
  const std::uint64_t seed = r.u64();
  const std::uint64_t capacity = r.varint();
  if (capacity == 0) throw SerializationError("windowed sampler capacity 0");
  WindowedF0Sampler s(static_cast<std::size_t>(capacity), seed);
  s.last_ts_ = r.varint();
  s.seq_ = r.varint();
  s.items_ = r.varint();
  for (int l = 0; l <= kMaxLevel; ++l) {
    Level& level = s.levels_[static_cast<std::size_t>(l)];
    const std::uint8_t evicted = r.u8();
    if (evicted > 1) throw SerializationError("bad windowed eviction flag");
    level.ever_evicted = evicted == 1;
    level.evict_horizon = r.varint();
    if (!level.ever_evicted && level.evict_horizon != 0)
      throw SerializationError("eviction horizon without evictions");
    const std::uint64_t count = r.varint();
    if (count > capacity) throw SerializationError("windowed level overfull");
    std::uint64_t prev_ts = 0;
    std::uint64_t prev_seq = 0;
    bool first = true;
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t ts = prev_ts + r.varint();
      const std::uint64_t seq = r.varint();
      const std::uint64_t label = r.varint();
      if (ts > s.last_ts_ || seq > s.seq_)
        throw SerializationError("windowed entry past the stream head");
      if (!first && (ts < prev_ts || (ts == prev_ts && seq <= prev_seq)))
        throw SerializationError("windowed entries out of recency order");
      first = false;
      prev_ts = ts;
      prev_seq = seq;
      const int lambda =
          std::min(hash_level(s.hash_(label), PairwiseHash::kBits), kMaxLevel);
      if (lambda < l)
        throw SerializationError("windowed entry level inconsistent with seed");
      if (!level.latest.emplace(label, std::make_pair(ts, seq)).second)
        throw SerializationError("duplicate label in windowed level");
      level.by_recency.emplace(std::make_pair(ts, seq), label);
    }
  }
  return s;
}

WindowedF0Sampler WindowedF0Sampler::deserialize(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  auto s = deserialize(r);
  if (!r.done()) throw SerializationError("trailing bytes after windowed sampler");
  return s;
}

std::size_t WindowedF0Sampler::bytes_used() const noexcept {
  std::size_t bytes = sizeof(*this);
  for (const auto& level : levels_) {
    // Node-based containers: approximate per-entry overheads.
    bytes += level.by_recency.size() * (sizeof(std::pair<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t>) + 4 * sizeof(void*));
    bytes += level.latest.size() * (sizeof(std::pair<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>) + 2 * sizeof(void*));
  }
  return bytes;
}

WindowedF0Estimator::WindowedF0Estimator(const EstimatorParams& params)
    : params_(params) {
  USTREAM_REQUIRE(params.copies >= 1, "need at least one copy");
  SeedSequence seeds(params.seed);
  copies_.reserve(params.copies);
  for (std::size_t i = 0; i < params.copies; ++i) {
    copies_.emplace_back(params.capacity, seeds.child(i));
  }
}

std::size_t WindowedF0Estimator::bytes_used() const noexcept {
  std::size_t b = sizeof(*this);
  for (const auto& c : copies_) b += c.bytes_used();
  return b;
}

void WindowedF0Estimator::serialize(ByteWriter& w) const {
  w.u8(kWireVersion);
  w.u64(params_.seed);
  w.varint(params_.capacity);
  w.varint(copies_.size());
  for (const auto& c : copies_) c.serialize(w);
}

std::vector<std::uint8_t> WindowedF0Estimator::serialize() const {
  ByteWriter w;
  serialize(w);
  return w.take();
}

WindowedF0Estimator WindowedF0Estimator::deserialize(
    std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  if (r.u8() != kWireVersion)
    throw SerializationError("bad windowed estimator version");
  EstimatorParams p;
  p.seed = r.u64();
  p.capacity = r.varint();
  p.copies = r.varint();
  if (p.copies == 0 || p.copies > 4096) throw SerializationError("bad copy count");
  if (p.capacity == 0) throw SerializationError("windowed estimator capacity 0");
  WindowedF0Estimator est(p);
  SeedSequence seeds(p.seed);
  est.copies_.clear();
  for (std::size_t i = 0; i < p.copies; ++i) {
    est.copies_.push_back(WindowedF0Sampler::deserialize(r));
    const WindowedF0Sampler& c = est.copies_.back();
    if (c.capacity() != p.capacity)
      throw SerializationError("windowed copy capacity mismatch");
    if (c.seed() != seeds.child(i))
      throw SerializationError("windowed copy seed inconsistent with root seed");
    if (c.sequence() != est.copies_.front().sequence() ||
        c.last_timestamp() != est.copies_.front().last_timestamp())
      throw SerializationError("windowed copies disagree on the op stream");
  }
  if (!r.done()) throw SerializationError("trailing bytes after windowed estimator");
  return est;
}

// Delta layout: u8 version, varint base_seq, varint base_last_ts, varint
// op count, ops as (varint ts-delta from the previous op's ts — the first
// from base_last_ts — , varint label). Sequence numbers are implicit:
// base_seq + 1, base_seq + 2, ...
std::vector<std::uint8_t> WindowedF0Estimator::encode_delta(
    std::uint64_t base_seq, std::uint64_t base_last_ts, std::span<const Op> ops) {
  ByteWriter w;
  w.u8(kDeltaWireVersion);
  w.varint(base_seq);
  w.varint(base_last_ts);
  w.varint(ops.size());
  std::uint64_t prev_ts = base_last_ts;
  for (const Op& op : ops) {
    USTREAM_REQUIRE(op.second >= prev_ts, "delta ops out of timestamp order");
    w.varint(op.second - prev_ts);
    prev_ts = op.second;
    w.varint(op.first);
  }
  return w.take();
}

void WindowedF0Estimator::apply_delta(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  if (r.u8() != kDeltaWireVersion)
    throw SerializationError("bad windowed delta version");
  const std::uint64_t base_seq = r.varint();
  const std::uint64_t base_last_ts = r.varint();
  if (base_seq != sequence() || base_last_ts != last_timestamp())
    throw SerializationError("windowed delta base does not match the mirror");
  const std::uint64_t count = r.varint();
  // Each op costs at least two bytes on the wire, so a count beyond the
  // remaining payload is corruption — reject it before the reserve turns a
  // flipped varint byte into a giant allocation.
  if (count > r.remaining()) {
    throw SerializationError("windowed delta op count exceeds payload");
  }
  // Decode fully before mutating so a malformed delta leaves the mirror
  // untouched (the caller then quarantines and resyncs).
  std::vector<Op> ops;
  ops.reserve(static_cast<std::size_t>(count));
  std::uint64_t prev_ts = base_last_ts;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t ts = prev_ts + r.varint();
    prev_ts = ts;
    ops.emplace_back(r.varint(), ts);
  }
  if (!r.done()) throw SerializationError("trailing bytes after windowed delta");
  std::uint64_t seq = base_seq;
  for (const Op& op : ops) {
    ++seq;
    for (auto& c : copies_) c.apply(op.first, op.second, seq);
  }
}

double windowed_union_estimate(std::span<const WindowedF0Estimator* const> parts,
                               std::uint64_t window_start) {
  std::size_t copies = 0;
  for (const WindowedF0Estimator* p : parts) {
    if (p == nullptr) continue;
    USTREAM_REQUIRE(copies == 0 || p->num_copies() == copies,
                    "windowed union requires identical copy counts");
    copies = p->num_copies();
  }
  if (copies == 0) return 0.0;
  std::vector<double> ests;
  ests.reserve(copies);
  std::unordered_set<std::uint64_t> seen;
  for (std::size_t i = 0; i < copies; ++i) {
    int level = 0;
    for (const WindowedF0Estimator* p : parts) {
      if (p == nullptr) continue;
      level = std::max(level, p->copy(i).level_for_window(window_start));
    }
    seen.clear();
    for (const WindowedF0Estimator* p : parts) {
      if (p == nullptr) continue;
      for (std::uint64_t label : p->copy(i).labels_in_window(level, window_start)) {
        seen.insert(label);
      }
    }
    ests.push_back(static_cast<double>(seen.size()) * std::ldexp(1.0, level));
  }
  return median_of(std::move(ests));
}

}  // namespace ustream
