#include "core/merge_engine.h"

#include <algorithm>

namespace ustream {

namespace {
// Set while a pool worker (or a caller inside parallel_for) is executing
// job bodies; a nested parallel_for from such a context runs inline
// instead of touching the single-level job state.
thread_local bool t_in_pool_task = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_indices(const std::function<void(std::size_t)>& body,
                             std::size_t n) noexcept {
  const bool was_in_task = t_in_pool_task;
  t_in_pool_task = true;
  try {
    while (true) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      body(i);
    }
  } catch (...) {
    std::lock_guard<std::mutex> lk(mu_);
    if (!error_) error_ = std::current_exception();
    // Park the index counter so remaining iterations are skipped; the
    // job still completes and the exception is rethrown on the caller.
    next_.store(n, std::memory_order_relaxed);
  }
  t_in_pool_task = was_in_task;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1 || t_in_pool_task) {
    // Inline path: no workers, nothing to split, or a nested call from
    // inside a pool task (the job slot is single-level).
    const bool was_in_task = t_in_pool_task;
    t_in_pool_task = true;
    try {
      for (std::size_t i = 0; i < n; ++i) body(i);
    } catch (...) {
      t_in_pool_task = was_in_task;
      throw;
    }
    t_in_pool_task = was_in_task;
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    body_ = &body;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    workers_busy_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  run_indices(body, n);  // the caller is a participant
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [this] { return workers_busy_ == 0; });
  body_ = nullptr;
  if (error_) {
    std::exception_ptr e = std::exchange(error_, nullptr);
    lk.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  while (true) {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      body = body_;
      n = n_;
    }
    run_indices(*body, n);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--workers_busy_ == 0) done_cv_.notify_all();
    }
  }
}

MergeEngine::MergeEngine(std::size_t threads)
    : pool_([threads] {
        std::size_t t = threads;
        if (t == 0) {
          t = std::max<std::size_t>(1, std::thread::hardware_concurrency());
          t = std::min<std::size_t>(t, 16);
        }
        return t - 1;  // the caller participates in every job
      }()) {}

MergeEngine& MergeEngine::shared() {
  static MergeEngine engine;
  return engine;
}

}  // namespace ustream
