// MergeEngine — the referee's parallel merge substrate.
//
// The paper's referee folds t site sketches left-to-right; that is a
// serial chain of t-1 merges. Every sketch in this library is a pure
// function of the distinct-label set it has absorbed (see the invariants
// in coordinated_sampler.h and DESIGN.md §7), so merge is associative and
// commutative up to the leftmost-value-wins rule for valued entries — and
// leftmost-wins is itself associative as long as input ORDER is preserved.
// Any reduction tree that keeps the inputs in site order therefore yields
// a referee state BYTE-IDENTICAL to the sequential site-order fold.
//
// The schedule is chosen for WORK-efficiency, not just depth: a fold's
// accumulator raises its sampling level once and then rejects most
// incoming entries with a cheap level compare, whereas a fully balanced
// tree pays full capacity-to-capacity merges (map inserts + level raises)
// at every internal node — measured ~4x the total work at 256 sites
// (bench_merge). So reduce() runs two phases:
//
//   1. block folds — the sites are split into p contiguous blocks (one
//      per pool slot); each slot folds its block sequentially, keeping
//      the fold's work profile. Wall-clock ~ (t/p) merges.
//   2. tree over heads — the p block results merge as a balanced tree in
//      block order, pairs of a round running on the pool; the final
//      (largest) pair merges copy-parallel (merge(other, pool)) when the
//      sketch supports it, so the tail of the reduction also uses every
//      slot. Only p-1 expensive head merges total.
//
// Determinism contract (enforced by tests/test_merge_engine.cpp):
//   reduce(parts) == parts[0].merge(parts[1]).merge(parts[2])... as
//   serialized bytes, for every sketch kind, any pool size (including 0
//   workers = fully inline), and any scheduling of the round's tasks —
//   blocks are contiguous and tasks touch disjoint pairs, so the result
//   cannot depend on execution order.
//
// Pool sizing: workers = threads-1 and the calling thread participates in
// every parallel_for, so a 1-core host degenerates to exactly the
// sequential fold with no synchronization at all.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ustream {

// A small fixed pool executing level-synchronous parallel_for jobs. The
// caller always participates, so `workers == 0` is a valid (purely
// inline) configuration and the pool never deadlocks on a 1-core host.
class ThreadPool {
 public:
  // Spawns `workers` persistent worker threads (0 is fine).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept { return workers_.size(); }

  // Runs body(i) exactly once for every i in [0, n), distributing indices
  // over the workers plus the calling thread; returns when all n calls
  // have finished. The first exception thrown by any body is rethrown on
  // the caller after the job completes. Re-entrant calls from inside a
  // pool task run inline (the pool's job state is single-level).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();
  void run_indices(const std::function<void(std::size_t)>& body, std::size_t n) noexcept;

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // a new job generation is available
  std::condition_variable done_cv_;  // all workers finished the generation
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t n_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t workers_busy_ = 0;
  std::exception_ptr error_;
};

class MergeEngine {
 public:
  // threads == 0 picks hardware_concurrency (clamped to [1, 16]); the
  // pool then holds threads-1 workers because the caller participates.
  explicit MergeEngine(std::size_t threads = 0);

  // Process-wide engine used by DistributedRun::collect() and
  // shard_and_merge when the caller does not pass one. Lazily built.
  static MergeEngine& shared();

  ThreadPool& pool() noexcept { return pool_; }
  std::size_t threads() const noexcept { return pool_.worker_count() + 1; }

  // Deterministic reduction over `parts` in index order: contiguous block
  // folds (one block per pool slot) followed by a balanced tree over the
  // block heads, with the final pair merged copy-parallel when the sketch
  // supports merge(other, pool). Byte-identical to the sequential fold of
  // `parts` (see the file comment). Returns nullopt iff parts is empty.
  // Inputs are consumed.
  template <typename Sketch>
  std::optional<Sketch> reduce(std::vector<Sketch>&& parts) {
    USTREAM_TRACE_SPAN("ustream_merge_reduce_ns");
    USTREAM_COUNTER_ADD("ustream_merge_parts_total", parts.size());
    if (parts.empty()) return std::nullopt;
    if (parts.size() == 1) return std::move(parts[0]);
    const std::size_t slots = pool_.worker_count() + 1;
    if (slots == 1) {
      // Inline host: the fold IS the work-optimal schedule.
      for (std::size_t i = 1; i < parts.size(); ++i) parts[0].merge(parts[i]);
      return std::move(parts[0]);
    }
    // Phase 1: fold p contiguous blocks concurrently, in site order.
    const std::size_t blocks = std::min(slots, parts.size());
    const std::size_t per = (parts.size() + blocks - 1) / blocks;
    pool_.parallel_for(blocks, [&](std::size_t b) {
      const std::size_t begin = b * per;
      const std::size_t end = std::min(parts.size(), begin + per);
      for (std::size_t i = begin + 1; i < end; ++i) parts[begin].merge(parts[i]);
    });
    std::vector<std::size_t> idx;  // block heads, still in site order
    idx.reserve(blocks);
    for (std::size_t b = 0; b < blocks && b * per < parts.size(); ++b) {
      idx.push_back(b * per);
    }
    // Phase 2: balanced tree over the heads (an odd tail carries).
    while (idx.size() > 2) {
      const std::size_t pairs = idx.size() / 2;
      pool_.parallel_for(pairs, [&](std::size_t p) {
        parts[idx[2 * p]].merge(parts[idx[2 * p + 1]]);
      });
      std::vector<std::size_t> survivors;
      survivors.reserve(pairs + (idx.size() & 1));
      for (std::size_t p = 0; p < pairs; ++p) survivors.push_back(idx[2 * p]);
      if (idx.size() & 1) survivors.push_back(idx.back());
      idx = std::move(survivors);
    }
    if (idx.size() == 2) {
      // The last merge is the largest; run it copy-parallel on the caller
      // (NOT inside parallel_for, which would force the nested pool use
      // inline) so it too spans every slot.
      if constexpr (requires(Sketch& a, const Sketch& b, ThreadPool& tp) {
                      a.merge(b, tp);
                    }) {
        parts[idx[0]].merge(parts[idx[1]], pool_);
      } else {
        parts[idx[0]].merge(parts[idx[1]]);
      }
    }
    return std::move(parts[idx[0]]);
  }

  // Same, over a degraded collection: missing sites (nullopt) are skipped
  // with the order of the present sites preserved — exactly what the
  // sequential referee loop did with partial collections.
  template <typename Sketch>
  std::optional<Sketch> reduce(std::vector<std::optional<Sketch>>&& parts) {
    std::vector<Sketch> live;
    live.reserve(parts.size());
    for (auto& p : parts) {
      if (p) live.push_back(std::move(*p));
    }
    return reduce(std::move(live));
  }

 private:
  ThreadPool pool_;
};

}  // namespace ustream
