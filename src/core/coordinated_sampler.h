// CoordinatedSampler — the paper's primary contribution (Gibbons &
// Tirthapura, SPAA 2001): a logarithmic-space, duplicate-insensitive,
// mergeable sample of the distinct labels of a data stream, coordinated
// across parties through a shared pairwise-independent hash.
//
// Invariants:
//   * S contains exactly the distinct labels seen so far whose hash level
//     is >= the current level l, except when that set exceeds `capacity`,
//     in which case l has been raised until it fits. ("Level" of a label =
//     trailing zeros of its shared hash value; Pr[level >= l] = 2^-l.)
//   * |S| <= capacity at all times after an update completes.
//   * merge(a, b) yields bit-for-bit the sampler state that a single party
//     would have reached observing any interleaving of both streams —
//     this is what makes the referee's union estimate sound, and is
//     checked exactly by property tests.
//
// Estimators exposed (the paper's "simple functions"):
//   * F0 of the stream/union:            |S| * 2^l
//   * SumDistinct (sum of a per-label value over distinct labels):
//                                        2^l * sum of sampled values
//   * count of distinct labels with property P: 2^l * |{x in S : P(x)}|
//   * the sample itself, a coordinated uniform sample of distinct labels.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "common/dense_map.h"
#include "common/error.h"
#include "common/serialize.h"
#include "hash/batch.h"
#include "hash/level.h"
#include "hash/pairwise.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ustream {

// Value payload for pure distinct counting (zero bytes per entry).
struct Unit {
  friend constexpr bool operator==(Unit, Unit) noexcept { return true; }
};

namespace detail {
template <typename V>
struct ValueCodec;

// kMaxBytes is the worst-case encoded size of one value; serialize() sizes
// its buffer from it, so every codec must keep it in sync with write().
template <>
struct ValueCodec<Unit> {
  static constexpr std::uint8_t kTag = 0;
  static constexpr std::size_t kMaxBytes = 0;
  static void write(ByteWriter&, Unit) {}
  static Unit read(ByteReader&) { return {}; }
};

template <>
struct ValueCodec<double> {
  static constexpr std::uint8_t kTag = 1;
  static constexpr std::size_t kMaxBytes = 8;  // fixed-width f64
  static void write(ByteWriter& w, double v) { w.f64(v); }
  static double read(ByteReader& r) { return r.f64(); }
};

template <>
struct ValueCodec<std::uint64_t> {
  static constexpr std::uint8_t kTag = 2;
  static constexpr std::size_t kMaxBytes = 10;  // LEB128 worst case
  static void write(ByteWriter& w, std::uint64_t v) { w.varint(v); }
  static std::uint64_t read(ByteReader& r) { return r.varint(); }
};
}  // namespace detail

template <typename Hash = PairwiseHash, typename V = Unit>
class CoordinatedSampler {
 public:
  static constexpr bool kHasValue = !std::is_empty_v<V>;

  struct Slot {
    V value;
    std::uint8_t level;
  };
  using Entry = typename DenseMap<Slot>::Entry;  // {key=label, value=Slot}

  CoordinatedSampler(std::size_t capacity, std::uint64_t seed)
      : hash_(seed), seed_(seed), capacity_(capacity), map_(capacity + 1) {
    USTREAM_REQUIRE(capacity >= 1, "sampler capacity must be >= 1");
  }

  // --- stream updates ------------------------------------------------------

  void add(std::uint64_t label) { add(label, V{}); }

  // Adds (label, value). The value is a per-label attribute: re-insertions
  // of the same label keep the first value (duplicate-insensitive); streams
  // where a label's value varies are outside the SumDistinct model.
  //
  // Survival is tested in threshold form: `(h & reject_mask_) == 0` with
  // reject_mask_ = 2^level - 1 is the single-compare equivalent of
  // `trailing_zeros(h) >= level` (docs/ALGORITHM.md §6), so rejected items
  // never pay the trailing-zeros extraction or a map probe.
  void add(std::uint64_t label, V value) {
    ++items_processed_;
    const std::uint64_t h = hash_(label);
    if ((h & reject_mask_) != 0) return;  // below the sampling threshold
    add_survivor(label, value, h);
  }

  // Batched ingestion. Bit-identical to calling add() per label in order —
  // property-tested via serialized-bytes equality — but hashes a 64-label
  // block into a stack buffer via hash_block() (SIMD for PairwiseHash) and
  // gets the threshold test back as a survivor bitmask. Once the level is
  // >= 1 most blocks come back all-rejected and the loop advances 64 items
  // on a single compare, never touching sampler memory.
  void add_batch(std::span<const std::uint64_t> labels)
    requires(!kHasValue)
  {
    // Counter only, no span: one relaxed fetch_add amortized over the
    // whole batch keeps this path inside the <2% overhead gate.
    USTREAM_COUNTER_ADD("ustream_ingest_batch_items_total", labels.size());
    items_processed_ += labels.size();
    std::uint64_t h[kBatchBlock];
    for (std::size_t i = 0; i < labels.size(); i += kBatchBlock) {
      const std::size_t n = std::min(kBatchBlock, labels.size() - i);
      std::uint64_t survivors = hash_block(hash_, labels.data() + i, h, n, reject_mask_);
      while (survivors != 0) {
        const auto j = static_cast<std::size_t>(std::countr_zero(survivors));
        survivors &= survivors - 1;
        // A level raise earlier in this block leaves stale bits behind;
        // add_survivor re-derives the exact level and drops them.
        add_survivor(labels[i + j], V{}, h[j]);
      }
    }
  }

  // Valued batch: labels[i] carries values[i]; spans must be equal length.
  void add_batch(std::span<const std::uint64_t> labels, std::span<const V> values)
    requires(kHasValue)
  {
    USTREAM_REQUIRE(labels.size() == values.size(),
                    "add_batch requires one value per label");
    USTREAM_COUNTER_ADD("ustream_ingest_batch_items_total", labels.size());
    items_processed_ += labels.size();
    std::uint64_t h[kBatchBlock];
    for (std::size_t i = 0; i < labels.size(); i += kBatchBlock) {
      const std::size_t n = std::min(kBatchBlock, labels.size() - i);
      std::uint64_t survivors = hash_block(hash_, labels.data() + i, h, n, reject_mask_);
      while (survivors != 0) {
        const auto j = static_cast<std::size_t>(std::countr_zero(survivors));
        survivors &= survivors - 1;
        add_survivor(labels[i + j], values[i + j], h[j]);
      }
    }
  }

  // --- the paper's estimators ----------------------------------------------

  // Estimate of F0, the number of distinct labels observed.
  double estimate_distinct() const noexcept {
    return static_cast<double>(map_.size()) * std::ldexp(1.0, level_);
  }

  // Estimate of the sum of per-label values over distinct labels.
  double estimate_sum() const noexcept
    requires std::is_arithmetic_v<V>
  {
    double s = 0.0;
    for (const auto& e : map_) s += static_cast<double>(e.value.value);
    return s * std::ldexp(1.0, level_);
  }

  // Estimate of |{distinct labels x : pred(x [, value(x)]) }|.
  template <typename Pred>
  double estimate_count_if(Pred pred) const {
    std::size_t k = 0;
    for (const auto& e : map_) {
      if constexpr (std::is_invocable_r_v<bool, Pred, std::uint64_t, V>) {
        if (pred(e.key, e.value.value)) ++k;
      } else {
        if (pred(e.key)) ++k;
      }
    }
    return static_cast<double>(k) * std::ldexp(1.0, level_);
  }

  // The coordinated sample of distinct labels currently held.
  std::vector<std::uint64_t> sample_labels() const {
    std::vector<std::uint64_t> out;
    out.reserve(map_.size());
    for (const auto& e : map_) out.push_back(e.key);
    return out;
  }

  // --- merge (the union operation) -----------------------------------------

  bool can_merge_with(const CoordinatedSampler& other) const noexcept {
    return seed_ == other.seed_ && capacity_ == other.capacity_;
  }

  // Folds `other` into this sampler. Requires identical seed and capacity
  // (the coordination contract). Result state is identical to a single
  // sampler that observed both streams.
  //
  // Single pass: all of other's entries at or above the current level are
  // inserted first and the capacity raise runs ONCE at the end, instead of
  // interleaving per-entry raises (each an O(|S|) filter) with insertion.
  // The final state is unchanged — it is the survivor set at the minimal
  // feasible level, a pure function of the distinct labels absorbed
  // (DESIGN.md §7) — the map just transiently holds up to 2·capacity
  // entries.
  void merge(const CoordinatedSampler& other) {
    USTREAM_REQUIRE(can_merge_with(other),
                    "merge requires samplers with identical seed and capacity");
    if (other.level_ > level_) {
      set_level(other.level_);
      map_.filter([this](const Entry& e) { return e.value.level >= level_; });
    }
    for (const auto& e : other.map_) {
      if (e.value.level < level_) continue;
      map_.try_emplace(e.key, e.value);
    }
    if (map_.size() > capacity_) raise_level();
    items_processed_ += other.items_processed_;
  }

  // k-way merge: folds all of `others` in one pass. Equivalent (and
  // byte-identical once serialized) to merging them left to right, but
  // adopts the maximum input level up front — one self-filter instead of
  // up to t — and defers the capacity raise to a single trailing pass.
  // Entries are inserted in input order, preserving the leftmost-wins
  // rule for valued duplicates.
  void merge_many(std::span<const CoordinatedSampler* const> others) {
    int target = level_;
    for (const CoordinatedSampler* o : others) {
      USTREAM_REQUIRE(o != nullptr && can_merge_with(*o),
                      "merge requires samplers with identical seed and capacity");
      target = std::max(target, o->level_);
    }
    if (target > level_) {
      set_level(target);
      map_.filter([this](const Entry& e) { return e.value.level >= level_; });
    }
    for (const CoordinatedSampler* o : others) {
      for (const auto& e : o->map_) {
        if (e.value.level < level_) continue;
        map_.try_emplace(e.key, e.value);
      }
      items_processed_ += o->items_processed_;
    }
    if (map_.size() > capacity_) raise_level();
  }

  // --- introspection ---------------------------------------------------------

  int level() const noexcept { return level_; }
  // Labels whose hash has any of these low bits set are below the current
  // level (the branchless survival test `(h & reject_mask()) == 0`).
  std::uint64_t reject_mask() const noexcept { return reject_mask_; }
  std::size_t size() const noexcept { return map_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t seed() const noexcept { return seed_; }
  std::uint64_t items_processed() const noexcept { return items_processed_; }
  std::uint64_t level_raises() const noexcept { return level_raises_; }
  static constexpr int max_level() noexcept { return Hash::kBits; }

  // Level assigned to a label by the shared hash (exposed for tests and
  // for the distributed runtime's diagnostics).
  int level_of(std::uint64_t label) const noexcept {
    return hash_level(hash_(label), Hash::kBits);
  }

  bool contains(std::uint64_t label) const noexcept { return map_.contains(label); }

  const DenseMap<Slot>& entries() const noexcept { return map_; }

  // In-memory footprint, for the space experiments (E2).
  std::size_t bytes_used() const noexcept { return sizeof(*this) + map_.bytes_used(); }

  // --- wire format ------------------------------------------------------------

  // Serialized size is what the distributed model charges per message (E4).
  void serialize(ByteWriter& w) const {
    w.u8(kWireVersion);
    w.u8(detail::ValueCodec<V>::kTag);
    w.u64(seed_);
    w.varint(capacity_);
    w.u8(static_cast<std::uint8_t>(level_));
    w.varint(map_.size());
    // Sort labels so they delta-encode compactly.
    std::vector<const Entry*> order;
    order.reserve(map_.size());
    for (const auto& e : map_) order.push_back(&e);
    std::sort(order.begin(), order.end(),
              [](const Entry* a, const Entry* b) { return a->key < b->key; });
    std::uint64_t prev = 0;
    for (const Entry* e : order) {
      w.varint(e->key - prev);
      prev = e->key;
      w.u8(e->value.level);
      detail::ValueCodec<V>::write(w, e->value.value);
    }
  }

  std::vector<std::uint8_t> serialize() const {
    // Worst case per entry: 10-byte label delta + 1-byte level + the
    // codec's own bound (8 for double payloads — sized from ValueCodec so
    // valued samplers don't under-reserve and reallocate mid-write).
    ByteWriter w(16 + map_.size() * (11 + detail::ValueCodec<V>::kMaxBytes));
    serialize(w);
    return w.take();
  }

  static CoordinatedSampler deserialize(ByteReader& r) {
    if (r.u8() != kWireVersion) throw SerializationError("bad sampler version");
    if (r.u8() != detail::ValueCodec<V>::kTag)
      throw SerializationError("sampler value-type mismatch");
    const std::uint64_t seed = r.u64();
    const std::uint64_t capacity = r.varint();
    if (capacity == 0) throw SerializationError("sampler capacity 0");
    const int level = r.u8();
    if (level > Hash::kBits) throw SerializationError("sampler level out of range");
    const std::uint64_t count = r.varint();
    if (count > capacity) throw SerializationError("sampler overfull");
    CoordinatedSampler s(static_cast<std::size_t>(capacity), seed);
    s.set_level(level);
    std::uint64_t label = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
      label += r.varint();
      const std::uint8_t lvl = r.u8();
      if (lvl < level || lvl > Hash::kBits) throw SerializationError("entry level out of range");
      if (s.level_of(label) != lvl) throw SerializationError("entry level inconsistent with seed");
      V value = detail::ValueCodec<V>::read(r);
      if (!s.map_.try_emplace(label, Slot{value, lvl}).second)
        throw SerializationError("duplicate label in sampler");
    }
    return s;
  }

  static CoordinatedSampler deserialize(std::span<const std::uint8_t> bytes) {
    ByteReader r(bytes);
    auto s = deserialize(r);
    if (!r.done()) throw SerializationError("trailing bytes after sampler");
    return s;
  }

  // --- delta wire format (continuous monitoring) -----------------------------
  //
  // A delta from `base` (a past state of THIS sampler's stream, e.g. the
  // referee's last-acked mirror) to the current state is just (new level,
  // entries added since base): entries only ever leave the sample through
  // level raises, and the level of a label is a pure function of the shared
  // hash, so the receiver reconstructs the evictions by filtering its own
  // copy of base at the new level. apply_delta(serialize_delta(base)) on a
  // bit-identical mirror of base lands bit-identical to *this — the
  // property test_wire_matrix enforces byte-for-byte.
  void serialize_delta(ByteWriter& w, const CoordinatedSampler& base) const {
    USTREAM_REQUIRE(can_merge_with(base), "delta requires identical seed and capacity");
    USTREAM_REQUIRE(level_ >= base.level_, "delta base is ahead of the sampler");
    w.u8(kDeltaWireVersion);
    w.u8(detail::ValueCodec<V>::kTag);
    w.u8(static_cast<std::uint8_t>(level_));
    std::vector<const Entry*> added;
    for (const auto& e : map_) {
      if (!base.map_.contains(e.key)) added.push_back(&e);
    }
    w.varint(added.size());
    std::sort(added.begin(), added.end(),
              [](const Entry* a, const Entry* b) { return a->key < b->key; });
    std::uint64_t prev = 0;
    for (const Entry* e : added) {
      w.varint(e->key - prev);
      prev = e->key;
      w.u8(e->value.level);
      detail::ValueCodec<V>::write(w, e->value.value);
    }
  }

  // Applies a delta produced by serialize_delta against a mirror of this
  // sampler's state. Throws SerializationError on any inconsistency (level
  // regression, level/seed mismatch, duplicate or overfull) — callers that
  // need rollback on failure apply onto a scratch copy and swap.
  void apply_delta(ByteReader& r) {
    if (r.u8() != kDeltaWireVersion) throw SerializationError("bad sampler delta version");
    if (r.u8() != detail::ValueCodec<V>::kTag)
      throw SerializationError("sampler delta value-type mismatch");
    const int new_level = r.u8();
    if (new_level < level_ || new_level > Hash::kBits)
      throw SerializationError("sampler delta level out of range");
    if (new_level > level_) {
      set_level(new_level);
      map_.filter([this](const Entry& e) { return e.value.level >= level_; });
    }
    const std::uint64_t count = r.varint();
    if (count > capacity_) throw SerializationError("sampler delta overfull");
    std::uint64_t label = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
      label += r.varint();
      const std::uint8_t lvl = r.u8();
      if (lvl < level_ || lvl > Hash::kBits)
        throw SerializationError("delta entry level out of range");
      if (level_of(label) != lvl)
        throw SerializationError("delta entry level inconsistent with seed");
      V value = detail::ValueCodec<V>::read(r);
      if (!map_.try_emplace(label, Slot{value, lvl}).second)
        throw SerializationError("duplicate label in sampler delta");
    }
    if (map_.size() > capacity_) throw SerializationError("sampler overfull after delta");
  }

 private:
  static constexpr std::uint8_t kWireVersion = 1;
  static constexpr std::uint8_t kDeltaWireVersion = 1;
  // Hash-block size for add_batch: exactly one survivor-bitmask word, and
  // small enough that the hash buffer stays in L1.
  static constexpr std::size_t kBatchBlock = 64;

  // Survivor of the threshold test: compute the exact level and insert.
  // Re-checks the level against level_ because a batch caller may hold a
  // mask that predates a level raise earlier in the same block.
  void add_survivor(std::uint64_t label, V value, std::uint64_t h) {
    const int lvl = hash_level(h, Hash::kBits);
    if (lvl < level_) return;
    auto [entry, inserted] =
        map_.try_emplace(label, Slot{value, static_cast<std::uint8_t>(lvl)});
    (void)entry;
    if (inserted && map_.size() > capacity_) raise_level();
  }

  // Every level_ mutation goes through here so the cached reject mask can
  // never go stale. (h & mask) != 0  <=>  trailing_zeros(h) < level.
  void set_level(int level) noexcept {
    level_ = level;
    reject_mask_ = level >= 64 ? ~std::uint64_t{0}
                               : (std::uint64_t{1} << level) - 1;
  }

  void raise_level() {
    // A raise is O(|S|) and happens only ~log(F0) times per stream, so a
    // span's two clock reads are noise here.
    USTREAM_TRACE_SPAN("ustream_sampler_level_raise_ns");
    while (map_.size() > capacity_) {
      USTREAM_COUNTER_ADD("ustream_sampler_level_raises_total", 1);
      set_level(level_ + 1);
      ++level_raises_;
      map_.filter([this](const Entry& e) { return e.value.level >= level_; });
      // Safety valve: if the hash has fewer usable bits than needed the
      // level is capped; with 61 bits this cannot trigger before ~2e18
      // distinct labels.
      if (level_ >= Hash::kBits) break;
    }
  }

  Hash hash_;
  std::uint64_t seed_;
  std::size_t capacity_;
  int level_ = 0;
  std::uint64_t reject_mask_ = 0;  // (1 << level_) - 1, cached
  DenseMap<Slot> map_;
  std::uint64_t items_processed_ = 0;
  std::uint64_t level_raises_ = 0;
};

}  // namespace ustream
