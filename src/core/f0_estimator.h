// F0Estimator: (epsilon, delta)-approximation of the number of distinct
// labels in one stream or in the union of many streams (Theorems T1/T2).
//
// Runs `copies` independent CoordinatedSamplers (independent hash seeds
// derived from one root seed) and reports the MEDIAN of their estimates —
// the standard boosting that turns the per-copy constant failure
// probability into delta. The estimator is mergeable copy-by-copy, so the
// distributed referee gets the same guarantee on the union.
//
// Beyond F0 it exposes the other "simple functions" the coordinated sample
// supports: counts/fractions of distinct labels satisfying a predicate,
// and the sample itself.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"
#include "common/random.h"
#include "common/serialize.h"
#include "common/stats.h"
#include "core/coordinated_sampler.h"
#include "core/merge_engine.h"
#include "core/params.h"
#include "hash/pairwise.h"

namespace ustream {

template <typename Hash = PairwiseHash>
class BasicF0Estimator {
 public:
  using Sampler = CoordinatedSampler<Hash, Unit>;

  explicit BasicF0Estimator(const EstimatorParams& params) : params_(params) {
    USTREAM_REQUIRE(params.copies >= 1, "need at least one copy");
    SeedSequence seeds(params.seed);
    copies_.reserve(params.copies);
    for (std::size_t i = 0; i < params.copies; ++i) {
      copies_.emplace_back(params.capacity, seeds.child(i));
    }
  }

  // Convenience: estimator meeting an (epsilon, delta) guarantee.
  BasicF0Estimator(double epsilon, double delta,
                   std::uint64_t seed = 0x5eed0123456789abULL)
      : BasicF0Estimator(EstimatorParams::for_guarantee(epsilon, delta, seed)) {}

  void add(std::uint64_t label) {
    for (auto& c : copies_) c.add(label);
  }

  // Batched ingestion, bit-identical to per-item add(). Copies are the
  // OUTER loop: each copy streams the whole block with its own hash
  // constants held in registers, instead of reloading every copy's state
  // per item as the scalar path does.
  void add_batch(std::span<const std::uint64_t> labels) {
    // Span here, not in the per-copy sampler: the batch work is multiplied
    // by `copies`, which amortizes the span's two clock reads.
    USTREAM_TRACE_SPAN("ustream_ingest_batch_ns");
    for (auto& c : copies_) c.add_batch(labels);
  }

  // Median-of-copies estimate of F0.
  double estimate() const {
    std::vector<double> ests;
    ests.reserve(copies_.size());
    for (const auto& c : copies_) ests.push_back(c.estimate_distinct());
    return median_of(std::move(ests));
  }

  // Estimate of the number of distinct labels satisfying pred.
  template <typename Pred>
  double estimate_count_if(Pred pred) const {
    std::vector<double> ests;
    ests.reserve(copies_.size());
    for (const auto& c : copies_) ests.push_back(c.estimate_count_if(pred));
    return median_of(std::move(ests));
  }

  // Estimate of the fraction of distinct labels satisfying pred, in [0,1].
  template <typename Pred>
  double estimate_fraction_if(Pred pred) const {
    std::vector<double> ests;
    ests.reserve(copies_.size());
    for (const auto& c : copies_) {
      const auto n = static_cast<double>(c.size());
      ests.push_back(n == 0.0 ? 0.0
                              : static_cast<double>(c.estimate_count_if(pred)) /
                                    (n * std::ldexp(1.0, c.level())));
    }
    return median_of(std::move(ests));
  }

  // A coordinated sample of the distinct labels (from the first copy).
  std::vector<std::uint64_t> sample_labels() const { return copies_.front().sample_labels(); }

  void merge(const BasicF0Estimator& other) {
    USTREAM_REQUIRE(copies_.size() == other.copies_.size(),
                    "merge requires estimators with identical parameters");
    for (std::size_t i = 0; i < copies_.size(); ++i) copies_[i].merge(other.copies_[i]);
  }

  // Copy-parallel merge: the copies are independent samplers, so they
  // merge concurrently on the pool. State is identical to merge(other).
  void merge(const BasicF0Estimator& other, ThreadPool& pool) {
    USTREAM_REQUIRE(copies_.size() == other.copies_.size(),
                    "merge requires estimators with identical parameters");
    pool.parallel_for(copies_.size(),
                      [&](std::size_t i) { copies_[i].merge(other.copies_[i]); });
  }

  // Copy-parallel k-way merge: copy i absorbs every input's copy i in one
  // single-pass merge_many. State is identical to folding `others` left
  // to right.
  void merge_many(std::span<const BasicF0Estimator* const> others, ThreadPool& pool) {
    for (const BasicF0Estimator* o : others) {
      USTREAM_REQUIRE(o != nullptr && copies_.size() == o->copies_.size(),
                      "merge requires estimators with identical parameters");
    }
    pool.parallel_for(copies_.size(), [&](std::size_t i) {
      std::vector<const Sampler*> parts;
      parts.reserve(others.size());
      for (const BasicF0Estimator* o : others) parts.push_back(&o->copies_[i]);
      copies_[i].merge_many(std::span<const Sampler* const>(parts));
    });
  }

  bool can_merge_with(const BasicF0Estimator& other) const noexcept {
    if (copies_.size() != other.copies_.size()) return false;
    for (std::size_t i = 0; i < copies_.size(); ++i) {
      if (!copies_[i].can_merge_with(other.copies_[i])) return false;
    }
    return true;
  }

  const EstimatorParams& params() const noexcept { return params_; }
  std::size_t num_copies() const noexcept { return copies_.size(); }
  const Sampler& copy(std::size_t i) const { return copies_.at(i); }
  std::uint64_t items_processed() const noexcept { return copies_.front().items_processed(); }

  std::size_t bytes_used() const noexcept {
    std::size_t b = sizeof(*this);
    for (const auto& c : copies_) b += c.bytes_used();
    return b;
  }

  void serialize(ByteWriter& w) const {
    w.u8(kWireVersion);
    w.u64(params_.seed);
    w.varint(params_.capacity);
    w.varint(copies_.size());
    for (const auto& c : copies_) c.serialize(w);
  }

  std::vector<std::uint8_t> serialize() const {
    ByteWriter w;
    serialize(w);
    return w.take();
  }

  static BasicF0Estimator deserialize(ByteReader& r) {
    if (r.u8() != kWireVersion) throw SerializationError("bad estimator version");
    EstimatorParams p;
    p.seed = r.u64();
    p.capacity = r.varint();
    p.copies = r.varint();
    if (p.copies == 0 || p.copies > 4096) throw SerializationError("bad copy count");
    BasicF0Estimator est(p);
    est.copies_.clear();
    for (std::size_t i = 0; i < p.copies; ++i) {
      est.copies_.push_back(Sampler::deserialize(r));
      if (est.copies_.back().capacity() != p.capacity)
        throw SerializationError("copy capacity mismatch");
    }
    return est;
  }

  static BasicF0Estimator deserialize(std::span<const std::uint8_t> bytes) {
    ByteReader r(bytes);
    auto e = deserialize(r);
    if (!r.done()) throw SerializationError("trailing bytes after estimator");
    return e;
  }

  // --- delta wire format (continuous monitoring) -----------------------------
  //
  // Copy-by-copy sampler deltas against `base` — a past state of this
  // estimator's own stream (the last-acked referee mirror). See
  // CoordinatedSampler::serialize_delta for the encoding and the argument
  // that applying it to a bit-identical mirror of base reproduces *this.
  void serialize_delta(ByteWriter& w, const BasicF0Estimator& base) const {
    USTREAM_REQUIRE(can_merge_with(base),
                    "delta requires estimators with identical parameters");
    w.u8(kDeltaWireVersion);
    w.varint(copies_.size());
    for (std::size_t i = 0; i < copies_.size(); ++i) {
      copies_[i].serialize_delta(w, base.copies_[i]);
    }
  }

  std::vector<std::uint8_t> serialize_delta(const BasicF0Estimator& base) const {
    ByteWriter w;
    serialize_delta(w, base);
    return w.take();
  }

  // Applies a delta onto this estimator (the mirror of the sender's base
  // state). Throws SerializationError on any inconsistency; this object may
  // then hold partially applied copies — callers that must keep the prior
  // state on failure apply onto a scratch copy and swap on success.
  void apply_delta(std::span<const std::uint8_t> bytes) {
    ByteReader r(bytes);
    if (r.u8() != kDeltaWireVersion) throw SerializationError("bad estimator delta version");
    const std::uint64_t copies = r.varint();
    if (copies != copies_.size()) throw SerializationError("estimator delta copy-count mismatch");
    for (auto& c : copies_) c.apply_delta(r);
    if (!r.done()) throw SerializationError("trailing bytes after estimator delta");
  }

 private:
  static constexpr std::uint8_t kWireVersion = 1;
  static constexpr std::uint8_t kDeltaWireVersion = 1;

  EstimatorParams params_;
  std::vector<Sampler> copies_;
};

using F0Estimator = BasicF0Estimator<PairwiseHash>;

}  // namespace ustream
