// Parameter calculus: turning a target (epsilon, delta) guarantee into the
// concrete knobs of the coordinated sampler — per-copy sample capacity and
// number of independent copies whose median is reported.
//
// Following the paper's analysis: with a pairwise-independent hash and
// capacity c = kCapacityConstant / eps^2, a single coordinated sample's
// estimate |S| * 2^level is within (1 +- eps) of F0 except with (constant)
// probability < 1/3; the median of r = O(log 1/delta) independent copies
// then fails with probability at most delta (standard Chernoff boosting).
#pragma once

#include <cstddef>
#include <cstdint>

namespace ustream {

struct EstimatorParams {
  std::size_t capacity = 576;  // per-copy sample capacity c
  std::size_t copies = 9;      // independent copies (odd, median-reported)
  std::uint64_t seed = 0x5eed0123456789abULL;

  // The constant in c = constant / eps^2. The paper's proof uses a
  // comfortable constant (we default to 36); E1 ablates {12,24,36,48}.
  static constexpr double kDefaultCapacityConstant = 36.0;

  // Builds parameters achieving an (epsilon, delta)-approximation.
  // Requires 0 < epsilon < 1 and 0 < delta < 1.
  static EstimatorParams for_guarantee(double epsilon, double delta,
                                       std::uint64_t seed = 0x5eed0123456789abULL,
                                       double capacity_constant = kDefaultCapacityConstant);

  // Number of copies sufficient for median boosting to failure prob delta,
  // assuming per-copy failure probability <= 1/3. Always odd, >= 1.
  static std::size_t copies_for_delta(double delta);

  // Capacity for a single copy at the given epsilon.
  static std::size_t capacity_for_epsilon(double epsilon,
                                          double capacity_constant = kDefaultCapacityConstant);
};

}  // namespace ustream
