#include "core/distinct_sampler.h"

#include <algorithm>
#include <cmath>

#include "hash/field61.h"

namespace ustream {

BottomKSampler::BottomKSampler(std::size_t k, std::uint64_t seed)
    : hash_(seed), seed_(seed), k_(k) {
  USTREAM_REQUIRE(k >= 2, "bottom-k sampler needs k >= 2");
  entries_.reserve(k);
}

bool BottomKSampler::contains_hash(std::uint64_t h) const noexcept {
  // Hashes are unique per label (the pairwise map is a field bijection), so
  // hash equality == label equality.
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), h,
      [](const Entry& e, std::uint64_t value) { return e.hash < value; });
  return it != entries_.end() && it->hash == h;
}

void BottomKSampler::insert_entry(const Entry& e) {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), e.hash,
      [](const Entry& x, std::uint64_t value) { return x.hash < value; });
  if (it != entries_.end() && it->hash == e.hash) return;  // duplicate label
  entries_.insert(it, e);
  if (entries_.size() > k_) entries_.pop_back();
}

void BottomKSampler::add(std::uint64_t label, double value) {
  const std::uint64_t h = hash_of(label);
  if (entries_.size() >= k_ && h >= entries_.back().hash) return;  // fast path
  insert_entry(Entry{h, label, value});
}

double BottomKSampler::estimate_distinct() const {
  if (!saturated()) return static_cast<double>(entries_.size());  // exact regime
  // Normalize the k-th smallest hash to (0, 1] over the field range.
  const double vk =
      (static_cast<double>(entries_.back().hash) + 1.0) / static_cast<double>(field61::kPrime);
  return static_cast<double>(k_ - 1) / vk;
}

double BottomKSampler::estimate_value_mean() const {
  if (entries_.empty()) return 0.0;
  double s = 0.0;
  for (const Entry& e : entries_) s += e.value;
  return s / static_cast<double>(entries_.size());
}

double BottomKSampler::estimate_value_quantile(double q) const {
  USTREAM_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  USTREAM_REQUIRE(!entries_.empty(), "quantile of an empty sample");
  std::vector<double> values;
  values.reserve(entries_.size());
  for (const Entry& e : entries_) values.push_back(e.value);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

void BottomKSampler::merge(const BottomKSampler& other) {
  USTREAM_REQUIRE(can_merge_with(other),
                  "merge requires bottom-k samplers with identical seed and k");
  if (other.entries_.empty()) return;
  if (entries_.empty()) {
    entries_ = other.entries_;  // already hash-sorted, size <= k
    return;
  }
  // Saturated reject: nothing in `other` beats the current k-th hash.
  if (saturated() && other.entries_.front().hash >= entries_.back().hash) return;
  // Disjoint splice: all of `other` sorts strictly before self.
  if (other.entries_.back().hash < entries_.front().hash) {
    std::vector<Entry> out;
    out.reserve(std::min(k_, other.entries_.size() + entries_.size()));
    out = other.entries_;
    for (const Entry& e : entries_) {
      if (out.size() >= k_) break;
      out.push_back(e);
    }
    entries_ = std::move(out);
    return;
  }
  // General case: one pass over the two sorted vectors, deduplicating by
  // hash (self wins), stopping as soon as k entries are emitted — every
  // remaining input is larger than the new k-th hash.
  std::vector<Entry> out;
  out.reserve(std::min(k_, entries_.size() + other.entries_.size()));
  auto a = entries_.begin();
  const auto ae = entries_.end();
  auto b = other.entries_.begin();
  const auto be = other.entries_.end();
  while (out.size() < k_ && a != ae && b != be) {
    if (a->hash < b->hash) {
      out.push_back(*a++);
    } else if (b->hash < a->hash) {
      out.push_back(*b++);
    } else {
      out.push_back(*a++);  // duplicate label: self's value wins
      ++b;
    }
  }
  while (out.size() < k_ && a != ae) out.push_back(*a++);
  while (out.size() < k_ && b != be) out.push_back(*b++);
  entries_ = std::move(out);
}

void BottomKSampler::merge_many(std::span<const BottomKSampler* const> others) {
  for (const BottomKSampler* o : others) {
    USTREAM_REQUIRE(o != nullptr && can_merge_with(*o),
                    "merge requires bottom-k samplers with identical seed and k");
  }
  // Cursor per input, self first so ties resolve leftmost. The heap holds
  // (hash, input) keys; at most k + duplicates pops ever happen because
  // once k entries are out, every remaining head exceeds the k-th hash.
  struct Cursor {
    const Entry* pos;
    const Entry* end;
    std::size_t input;
  };
  std::vector<Cursor> cursors;
  cursors.reserve(others.size() + 1);
  if (!entries_.empty()) {
    cursors.push_back({entries_.data(), entries_.data() + entries_.size(), 0});
  }
  std::size_t input = 1;
  for (const BottomKSampler* o : others) {
    if (!o->entries_.empty()) {
      cursors.push_back(
          {o->entries_.data(), o->entries_.data() + o->entries_.size(), input});
    }
    ++input;
  }
  if (cursors.empty()) return;
  const auto later = [](const Cursor& x, const Cursor& y) {
    // Max-heap comparator inverted into a min-heap on (hash, input).
    if (x.pos->hash != y.pos->hash) return x.pos->hash > y.pos->hash;
    return x.input > y.input;
  };
  std::make_heap(cursors.begin(), cursors.end(), later);
  std::vector<Entry> out;
  out.reserve(k_);
  while (!cursors.empty() && out.size() < k_) {
    std::pop_heap(cursors.begin(), cursors.end(), later);
    Cursor c = cursors.back();
    cursors.pop_back();
    if (out.empty() || out.back().hash != c.pos->hash) out.push_back(*c.pos);
    if (++c.pos != c.end) {
      cursors.push_back(c);
      std::push_heap(cursors.begin(), cursors.end(), later);
    }
  }
  entries_ = std::move(out);
}

void BottomKSampler::serialize(ByteWriter& w) const {
  w.u8(kWireVersion);
  w.u64(seed_);
  w.varint(k_);
  w.varint(entries_.size());
  std::uint64_t prev = 0;
  for (const Entry& e : entries_) {  // already sorted by hash
    w.varint(e.hash - prev);
    prev = e.hash;
    w.varint(e.label);
    w.f64(e.value);
  }
}

std::vector<std::uint8_t> BottomKSampler::serialize() const {
  ByteWriter w(16 + entries_.size() * 20);
  serialize(w);
  return w.take();
}

BottomKSampler BottomKSampler::deserialize(ByteReader& r) {
  if (r.u8() != kWireVersion) throw SerializationError("bad bottom-k version");
  const std::uint64_t seed = r.u64();
  const std::uint64_t k = r.varint();
  if (k < 2) throw SerializationError("bottom-k k < 2");
  const std::uint64_t count = r.varint();
  if (count > k) throw SerializationError("bottom-k overfull");
  BottomKSampler s(static_cast<std::size_t>(k), seed);
  std::uint64_t prev_hash = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    Entry e;
    const std::uint64_t delta = r.varint();
    if (i > 0 && delta == 0) throw SerializationError("bottom-k hashes not strictly sorted");
    e.hash = prev_hash + delta;
    prev_hash = e.hash;
    e.label = r.varint();
    e.value = r.f64();
    if (s.hash_of(e.label) != e.hash) throw SerializationError("bottom-k hash inconsistent");
    s.entries_.push_back(e);
  }
  return s;
}

BottomKSampler BottomKSampler::deserialize(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  auto s = deserialize(r);
  if (!r.done()) throw SerializationError("trailing bytes after bottom-k sampler");
  return s;
}

}  // namespace ustream
