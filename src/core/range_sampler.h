// RangeSampler — range-efficient coordinated sampling (the Pavan-Tirthapura
// extension indexed as E11 in DESIGN.md).
//
// The stream's items are INTERVALS of labels [lo, hi] (e.g. IP ranges,
// timestamp windows, rectangle edges); the quantity of interest is still F0,
// the number of distinct labels covered by the union of all intervals. A
// naive coordinated sampler would insert every label of every interval; the
// range sampler processes an interval in time polylogarithmic in its width:
//
//   * survival test is threshold-form:  h(x) = (a*x+b) mod p  <  t_l, with
//     t_l = p >> l  (same geometric sampling law, Pr ~ 2^-l, but the test
//     over an interval becomes an arithmetic-progression count);
//   * count_below_threshold (floor_sum) counts an interval's survivors in
//     O(log p) — the level is raised until the interval's survivors fit;
//   * surviving labels are then ENUMERATED by binary interval splitting,
//     guided by the same counting oracle (O(k log w log p) for k survivors).
//
// Estimate: |S| * (p / t_l). Mergeable and duplicate-/overlap-insensitive
// exactly like the point sampler.
#pragma once

#include <cstdint>
#include <vector>

#include "common/dense_map.h"
#include "common/error.h"
#include "common/serialize.h"
#include "common/stats.h"
#include "core/merge_engine.h"
#include "core/params.h"
#include "hash/field61.h"
#include "hash/pairwise.h"

namespace ustream {

class RangeSampler {
 public:
  // Labels live in [0, kDomain); intervals are inclusive [lo, hi].
  static constexpr std::uint64_t kDomain = field61::kPrime;

  RangeSampler(std::size_t capacity, std::uint64_t seed);

  // Insert every label in [lo, hi] (inclusive). Requires lo <= hi < kDomain.
  void add_range(std::uint64_t lo, std::uint64_t hi);

  // Insert a single label (an interval of width 1).
  void add(std::uint64_t label) { add_range(label, label); }

  double estimate_distinct() const noexcept;

  void merge(const RangeSampler& other);
  bool can_merge_with(const RangeSampler& other) const noexcept {
    return seed_ == other.seed_ && capacity_ == other.capacity_;
  }

  int level() const noexcept { return level_; }
  std::uint64_t threshold() const noexcept { return threshold_; }
  std::size_t size() const noexcept { return set_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t seed() const noexcept { return seed_; }
  std::uint64_t intervals_processed() const noexcept { return intervals_processed_; }
  std::size_t bytes_used() const noexcept { return sizeof(*this) + set_.bytes_used(); }

  // Survival test for a single label at the current level (for tests).
  bool survives(std::uint64_t label) const noexcept { return hash_value(label) < threshold_; }
  std::uint64_t hash_value(std::uint64_t label) const noexcept {
    return field61::mul_add(a_, label, b_);
  }

  // Number of labels in [lo, hi] surviving threshold t (O(log p) via
  // floor_sum); public for tests and for the estimator's diagnostics.
  std::uint64_t count_survivors(std::uint64_t lo, std::uint64_t hi, std::uint64_t t) const;

  std::vector<std::uint64_t> sample_labels() const;

  void serialize(ByteWriter& w) const;
  std::vector<std::uint8_t> serialize() const;
  static RangeSampler deserialize(ByteReader& r);
  static RangeSampler deserialize(std::span<const std::uint8_t> bytes);

 private:
  static constexpr std::uint8_t kWireVersion = 1;

  void raise_level();
  // Appends survivors of [lo, hi] under the current threshold to out by
  // binary splitting (count oracle prunes empty halves).
  void enumerate_survivors(std::uint64_t lo, std::uint64_t hi,
                           std::vector<std::uint64_t>& out) const;

  std::uint64_t a_, b_;  // shared pairwise hash coefficients
  std::uint64_t seed_;
  std::size_t capacity_;
  int level_ = 0;
  std::uint64_t threshold_ = kDomain;  // t_l = p >> l
  DenseSet set_;
  std::uint64_t intervals_processed_ = 0;
};

// Median-of-copies (epsilon, delta) wrapper, mirroring F0Estimator.
class RangeF0Estimator {
 public:
  explicit RangeF0Estimator(const EstimatorParams& params);
  RangeF0Estimator(double epsilon, double delta, std::uint64_t seed = 0x5eed0123456789abULL)
      : RangeF0Estimator(EstimatorParams::for_guarantee(epsilon, delta, seed)) {}

  void add_range(std::uint64_t lo, std::uint64_t hi) {
    for (auto& c : copies_) c.add_range(lo, hi);
  }
  void add(std::uint64_t label) { add_range(label, label); }

  double estimate() const;

  void merge(const RangeF0Estimator& other);
  // Copy-parallel merge; state identical to merge(other).
  void merge(const RangeF0Estimator& other, ThreadPool& pool);

  std::size_t num_copies() const noexcept { return copies_.size(); }
  const RangeSampler& copy(std::size_t i) const { return copies_.at(i); }
  const EstimatorParams& params() const noexcept { return params_; }
  std::size_t bytes_used() const noexcept;

 private:
  EstimatorParams params_;
  std::vector<RangeSampler> copies_;
};

}  // namespace ustream
