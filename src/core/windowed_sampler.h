// Sliding-window distinct counting — the extension the authors pursued
// immediately after this paper (Gibbons & Tirthapura, SPAA 2002 direction):
// estimate the number of distinct labels among the items whose timestamps
// fall in a recent window (now - W, now], for ANY W up to a maximum,
// chosen at query time.
//
// Construction: one coordinated sample PER LEVEL. Level l keeps the most
// recent `capacity` distinct labels whose hash level is >= l (each label
// appears with its LATEST timestamp, so re-arrivals refresh recency —
// duplicate-insensitive within the window semantics). When a level
// overflows, its oldest label is evicted and the level records the evicted
// timestamp horizon. A query for window start `s` uses the SMALLEST level
// whose horizon is older than `s` — that level provably still holds every
// surviving label of the window — and scales the in-window count by 2^l.
//
// Expected update cost is O(1) map operations amortized (a label of level
// lambda touches lambda+1 <= levels structures, E[lambda+1] = 2); space is
// O(capacity * log n) words, matching the published bound.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/random.h"
#include "common/serialize.h"
#include "common/stats.h"
#include "core/params.h"
#include "hash/level.h"
#include "hash/pairwise.h"

namespace ustream {

class WindowedF0Sampler {
 public:
  // Levels above this hold < capacity/2^40 of a 2^40-distinct stream:
  // never needed at realistic scale, and capping bounds worst-case memory.
  static constexpr int kMaxLevel = 40;

  WindowedF0Sampler(std::size_t capacity, std::uint64_t seed);

  // Timestamps must be non-decreasing across calls (stream order).
  void add(std::uint64_t label, std::uint64_t timestamp);

  // Op replay with an explicit sequence number: the continuous protocol's
  // windowed deltas replay a site's (label, timestamp) ops into a referee
  // mirror, and state is a pure function of the op sequence, so replaying
  // with the ORIGINAL per-op sequence numbers lands the mirror bit-identical
  // to the site. add() delegates here with seq = sequence() + 1. `seq` must
  // be strictly increasing and `timestamp` non-decreasing.
  void apply(std::uint64_t label, std::uint64_t timestamp, std::uint64_t seq);

  // Estimate of |{distinct labels with latest timestamp >= window_start}|.
  // Any window_start <= current time is valid; accuracy degrades (level
  // rises) for windows so large that their labels overflowed every level.
  double estimate_distinct(std::uint64_t window_start) const;

  // Smallest usable level for the given window start (diagnostics/tests).
  int level_for_window(std::uint64_t window_start) const;

  std::uint64_t last_timestamp() const noexcept { return last_ts_; }
  std::uint64_t sequence() const noexcept { return seq_; }
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t seed() const noexcept { return seed_; }
  std::uint64_t items_processed() const noexcept { return items_; }
  std::size_t bytes_used() const noexcept;

  // Labels currently retained at a level (tests).
  std::size_t level_size(int level) const { return levels_.at(static_cast<std::size_t>(level)).by_recency.size(); }
  std::uint64_t level_horizon(int level) const { return levels_.at(static_cast<std::size_t>(level)).evict_horizon; }
  bool level_ever_evicted(int level) const { return levels_.at(static_cast<std::size_t>(level)).ever_evicted; }

  // Labels at `level` with latest timestamp >= window_start, for the
  // cross-site union estimate (windowed_union_estimate).
  std::vector<std::uint64_t> labels_in_window(int level, std::uint64_t window_start) const;

  // Full wire state (the continuous protocol's kWindowedF0 resync payload):
  // every level's recency-ordered entries plus the eviction horizons, so a
  // deserialized mirror is bit-identical — subsequent op-replay deltas land
  // it exactly where the site is.
  void serialize(ByteWriter& w) const;
  std::vector<std::uint8_t> serialize() const;
  static WindowedF0Sampler deserialize(ByteReader& r);
  static WindowedF0Sampler deserialize(std::span<const std::uint8_t> bytes);

 private:
  static constexpr std::uint8_t kSamplerWireVersion = 1;

  struct Level {
    // (timestamp, sequence) -> label; ordered so the oldest is first.
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> by_recency;
    // label -> its key in by_recency.
    std::unordered_map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>> latest;
    // Max timestamp ever evicted: windows starting at or before this
    // timestamp can no longer be answered exactly from this level.
    std::uint64_t evict_horizon = 0;
    bool ever_evicted = false;
  };

  void touch_level(Level& level, std::uint64_t label, std::uint64_t ts);

  PairwiseHash hash_;
  std::uint64_t seed_;
  std::size_t capacity_;
  std::vector<Level> levels_;
  std::uint64_t last_ts_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t items_ = 0;
};

// Median-of-copies wrapper, mirroring F0Estimator.
class WindowedF0Estimator {
 public:
  explicit WindowedF0Estimator(const EstimatorParams& params);
  WindowedF0Estimator(double epsilon, double delta,
                      std::uint64_t seed = 0x5eed0123456789abULL)
      : WindowedF0Estimator(EstimatorParams::for_guarantee(epsilon, delta, seed)) {}

  void add(std::uint64_t label, std::uint64_t timestamp) {
    for (auto& c : copies_) c.add(label, timestamp);
  }

  double estimate_distinct(std::uint64_t window_start) const {
    std::vector<double> ests;
    ests.reserve(copies_.size());
    for (const auto& c : copies_) ests.push_back(c.estimate_distinct(window_start));
    return median_of(std::move(ests));
  }

  std::size_t num_copies() const noexcept { return copies_.size(); }
  const WindowedF0Sampler& copy(std::size_t i) const { return copies_.at(i); }
  const EstimatorParams& params() const noexcept { return params_; }
  // Ops applied so far (identical across copies: every copy sees the same
  // op stream, only its per-copy hash differs).
  std::uint64_t sequence() const noexcept { return copies_.front().sequence(); }
  std::uint64_t last_timestamp() const noexcept { return copies_.front().last_timestamp(); }
  std::size_t bytes_used() const noexcept;

  // Full wire state (kWindowedF0 payload).
  void serialize(ByteWriter& w) const;
  std::vector<std::uint8_t> serialize() const;
  static WindowedF0Estimator deserialize(std::span<const std::uint8_t> bytes);

  // One (label, timestamp) stream op; sequence numbers are implicit
  // (consecutive from the delta's base sequence).
  using Op = std::pair<std::uint64_t, std::uint64_t>;

  // Encodes the kWindowedDelta payload: the ops applied since the mirror's
  // state at (base_seq, base_last_ts). The mirror refuses the delta unless
  // its own sequence/timestamp match the base exactly, so a gap in the
  // chain surfaces as a SerializationError (-> quarantine -> resync).
  static std::vector<std::uint8_t> encode_delta(std::uint64_t base_seq,
                                                std::uint64_t base_last_ts,
                                                std::span<const Op> ops);

  // Validates the delta against this mirror's (sequence, last_timestamp)
  // and replays the ops into every copy. Validation completes before any
  // mutation, so a throwing apply leaves the mirror untouched.
  void apply_delta(std::span<const std::uint8_t> bytes);

 private:
  static constexpr std::uint8_t kWireVersion = 1;
  static constexpr std::uint8_t kDeltaWireVersion = 1;

  EstimatorParams params_;
  std::vector<WindowedF0Sampler> copies_;
};

// Union estimate over per-site windowed mirrors, per copy index: take the
// max level any site needs for the window (every site's structure at that
// level is then exact for the window), count the distinct in-window labels
// across sites at that level, scale by 2^level; median across copies.
// Order-independent and non-destructive by construction — the per-site
// mirrors are read, never merged, which sidesteps the cross-site sequence
// collisions a destructive recency-merge would have to invent tiebreaks
// for.
double windowed_union_estimate(std::span<const WindowedF0Estimator* const> parts,
                               std::uint64_t window_start);

}  // namespace ustream
