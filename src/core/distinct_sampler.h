// BottomKSampler — a coordinated uniform sample of the DISTINCT labels of
// one stream or of a union of streams, with per-label values.
//
// This is the abstract's "extract a sample of the union" capability in its
// most directly usable form: keep the k labels with the smallest shared
// hash values (bottom-k). Because the hash is shared, bottom-k sets from
// different sites merge into the bottom-k of the union; because each
// distinct label appears once regardless of multiplicity, the sample is
// uniform over distinct labels. Against the level-based CoordinatedSampler
// the bottom-k view trades the clean 2^level estimate for an exactly-k
// sample, which is what statistics over per-label values want:
//
//   * estimate_distinct():   (k-1) / h_(k)            (KMV form)
//   * mean / quantiles of value over distinct labels: statistics of the
//     sampled values (uniform sample => plug-in estimates)
//   * fraction of distinct labels with predicate P:   sample fraction
//
// The paper's coordinated-sampling idea is exactly what makes the merge
// sound; KMV/theta sketches are this structure's direct descendants.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"
#include "common/serialize.h"
#include "hash/pairwise.h"

namespace ustream {

class BottomKSampler {
 public:
  struct Entry {
    std::uint64_t hash;   // shared-hash value (the coordination key)
    std::uint64_t label;
    double value;         // per-label attribute (first occurrence wins)
  };

  BottomKSampler(std::size_t k, std::uint64_t seed);

  void add(std::uint64_t label, double value = 0.0);

  // Number of distinct labels currently sampled (== min(k, F0 so far)).
  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t k() const noexcept { return k_; }
  std::uint64_t seed() const noexcept { return seed_; }
  bool saturated() const noexcept { return entries_.size() >= k_; }

  // KMV estimate of the number of distinct labels.
  double estimate_distinct() const;

  // Plug-in statistics of the per-label value over DISTINCT labels.
  double estimate_value_mean() const;
  double estimate_value_quantile(double q) const;

  template <typename Pred>
  double estimate_fraction_if(Pred pred) const {
    if (entries_.empty()) return 0.0;
    std::size_t hits = 0;
    for (const Entry& e : entries_) {
      if (pred(e.label, e.value)) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(entries_.size());
  }

  // The sample itself (sorted by hash, i.e. in uniform-random label order).
  const std::vector<Entry>& entries() const noexcept { return entries_; }

  // Folds `other` in. Linear time: a single pass over the two hash-sorted
  // entry vectors (with splice fast paths for empty/disjoint inputs and an
  // O(1) reject when nothing in `other` can beat the current threshold),
  // instead of a per-entry sorted insert (O(k) each, O(k²) per merge).
  // Duplicate hashes keep self's entry — the leftmost-wins rule that makes
  // site-order folds and tree reductions byte-identical.
  void merge(const BottomKSampler& other);

  // k-way merge: folds all of `others` in a single pass over a t-way
  // cursor heap, emitting at most k entries — O((k + t) log t) instead of
  // the t successive pairwise merges' O(t·k). Ties across inputs keep the
  // earliest input (self first, then `others` in order).
  void merge_many(std::span<const BottomKSampler* const> others);

  bool can_merge_with(const BottomKSampler& other) const noexcept {
    return seed_ == other.seed_ && k_ == other.k_;
  }

  void serialize(ByteWriter& w) const;
  std::vector<std::uint8_t> serialize() const;
  static BottomKSampler deserialize(ByteReader& r);
  static BottomKSampler deserialize(std::span<const std::uint8_t> bytes);

  std::size_t bytes_used() const noexcept {
    return sizeof(*this) + entries_.capacity() * sizeof(Entry);
  }

 private:
  static constexpr std::uint8_t kWireVersion = 1;

  std::uint64_t hash_of(std::uint64_t label) const noexcept { return hash_(label); }
  bool contains_hash(std::uint64_t h) const noexcept;
  void insert_entry(const Entry& e);

  PairwiseHash hash_;
  std::uint64_t seed_;
  std::size_t k_;
  // Sorted ascending by hash; size <= k. Insertion is O(k) worst case but
  // amortized O(1) once saturated (a random new label beats the threshold
  // with probability k/F0).
  std::vector<Entry> entries_;
};

}  // namespace ustream
