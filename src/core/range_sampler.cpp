#include "core/range_sampler.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "core/floor_sum.h"

namespace ustream {

RangeSampler::RangeSampler(std::size_t capacity, std::uint64_t seed)
    : seed_(seed), capacity_(capacity), set_(capacity + 1) {
  USTREAM_REQUIRE(capacity >= 1, "range sampler capacity must be >= 1");
  const PairwiseHash h(seed);
  a_ = h.a();
  b_ = h.b();
}

std::uint64_t RangeSampler::count_survivors(std::uint64_t lo, std::uint64_t hi,
                                            std::uint64_t t) const {
  // h(lo + i) = (a*i + (a*lo + b mod p)) mod p for i in [0, hi-lo].
  const std::uint64_t shifted_b = field61::mul_add(a_, lo, b_);
  return count_below_threshold(hi - lo + 1, field61::kPrime, a_, shifted_b, t);
}

void RangeSampler::enumerate_survivors(std::uint64_t lo, std::uint64_t hi,
                                       std::vector<std::uint64_t>& out) const {
  // Below this width, direct testing beats two floor_sum evaluations.
  constexpr std::uint64_t kScanWidth = 32;
  if (hi - lo + 1 <= kScanWidth) {
    for (std::uint64_t x = lo; x <= hi; ++x) {
      if (survives(x)) out.push_back(x);
    }
    return;
  }
  if (count_survivors(lo, hi, threshold_) == 0) return;
  const std::uint64_t mid = lo + (hi - lo) / 2;
  enumerate_survivors(lo, mid, out);
  enumerate_survivors(mid + 1, hi, out);
}

void RangeSampler::add_range(std::uint64_t lo, std::uint64_t hi) {
  USTREAM_REQUIRE(lo <= hi && hi < kDomain, "interval must satisfy lo <= hi < domain");
  ++intervals_processed_;
  // Preemptive raise ONLY when the interval's own survivors cannot fit at
  // the current level — they are distinct labels that would all enter S, so
  // the raise is forced regardless of what S already holds. (Raising on
  // set_.size() + c would over-raise when the interval overlaps S, breaking
  // the exact equivalence with point-by-point insertion.)
  std::uint64_t c = count_survivors(lo, hi, threshold_);
  while (c > capacity_ && threshold_ > 0) {
    raise_level();
    c = count_survivors(lo, hi, threshold_);
  }
  if (c == 0) return;
  std::vector<std::uint64_t> survivors;
  survivors.reserve(static_cast<std::size_t>(c));
  enumerate_survivors(lo, hi, survivors);
  for (std::uint64_t x : survivors) {
    if (!survives(x)) continue;  // the level rose mid-insertion
    set_.insert(x);
    while (set_.size() > capacity_ && threshold_ > 0) raise_level();
  }
}

void RangeSampler::raise_level() {
  ++level_;
  threshold_ = level_ >= 61 ? 0 : (kDomain >> level_);
  std::vector<std::uint64_t> keep;
  keep.reserve(set_.size());
  set_.for_each([&](std::uint64_t x) {
    if (survives(x)) keep.push_back(x);
  });
  set_.clear();
  for (std::uint64_t x : keep) set_.insert(x);
}

double RangeSampler::estimate_distinct() const noexcept {
  if (threshold_ == 0) return 0.0;
  const double scale = static_cast<double>(kDomain) / static_cast<double>(threshold_);
  return static_cast<double>(set_.size()) * scale;
}

void RangeSampler::merge(const RangeSampler& other) {
  USTREAM_REQUIRE(can_merge_with(other),
                  "merge requires range samplers with identical seed and capacity");
  if (other.level_ > level_) {
    level_ = other.level_;
    threshold_ = other.threshold_;
    std::vector<std::uint64_t> keep;
    keep.reserve(set_.size());
    set_.for_each([&](std::uint64_t x) {
      if (survives(x)) keep.push_back(x);
    });
    set_.clear();
    for (std::uint64_t x : keep) set_.insert(x);
  }
  // Single pass: insert every surviving incoming label first, then settle
  // the capacity raise once. The per-entry raise loop this replaces
  // re-filtered the whole set on every overflow mid-merge; the final state
  // is the same either way (survivors at the minimal feasible level — a
  // pure function of the covered label set, DESIGN.md §7).
  other.set_.for_each([&](std::uint64_t x) {
    if (survives(x)) set_.insert(x);
  });
  while (set_.size() > capacity_ && threshold_ > 0) raise_level();
  intervals_processed_ += other.intervals_processed_;
}

std::vector<std::uint64_t> RangeSampler::sample_labels() const {
  std::vector<std::uint64_t> out;
  out.reserve(set_.size());
  set_.for_each([&](std::uint64_t x) { out.push_back(x); });
  return out;
}

void RangeSampler::serialize(ByteWriter& w) const {
  w.u8(kWireVersion);
  w.u64(seed_);
  w.varint(capacity_);
  w.u8(static_cast<std::uint8_t>(level_));
  w.varint(set_.size());
  auto labels = sample_labels();
  std::sort(labels.begin(), labels.end());
  std::uint64_t prev = 0;
  for (std::uint64_t x : labels) {
    w.varint(x - prev);
    prev = x;
  }
}

std::vector<std::uint8_t> RangeSampler::serialize() const {
  ByteWriter w(16 + set_.size() * 5);
  serialize(w);
  return w.take();
}

RangeSampler RangeSampler::deserialize(ByteReader& r) {
  if (r.u8() != kWireVersion) throw SerializationError("bad range sampler version");
  const std::uint64_t seed = r.u64();
  const std::uint64_t capacity = r.varint();
  if (capacity == 0) throw SerializationError("range sampler capacity 0");
  const int level = r.u8();
  if (level > 61) throw SerializationError("range sampler level out of range");
  const std::uint64_t count = r.varint();
  if (count > capacity) throw SerializationError("range sampler overfull");
  RangeSampler s(static_cast<std::size_t>(capacity), seed);
  s.level_ = level;
  s.threshold_ = level >= 61 ? 0 : (kDomain >> level);
  std::uint64_t label = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    label += r.varint();
    if (label >= kDomain) throw SerializationError("label out of domain");
    if (!s.survives(label)) throw SerializationError("label inconsistent with threshold");
    if (!s.set_.insert(label)) throw SerializationError("duplicate label");
  }
  return s;
}

RangeSampler RangeSampler::deserialize(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  auto s = deserialize(r);
  if (!r.done()) throw SerializationError("trailing bytes after range sampler");
  return s;
}

RangeF0Estimator::RangeF0Estimator(const EstimatorParams& params) : params_(params) {
  USTREAM_REQUIRE(params.copies >= 1, "need at least one copy");
  SeedSequence seeds(params.seed);
  copies_.reserve(params.copies);
  for (std::size_t i = 0; i < params.copies; ++i) {
    copies_.emplace_back(params.capacity, seeds.child(i));
  }
}

double RangeF0Estimator::estimate() const {
  std::vector<double> ests;
  ests.reserve(copies_.size());
  for (const auto& c : copies_) ests.push_back(c.estimate_distinct());
  return median_of(std::move(ests));
}

void RangeF0Estimator::merge(const RangeF0Estimator& other) {
  USTREAM_REQUIRE(copies_.size() == other.copies_.size(),
                  "merge requires estimators with identical parameters");
  for (std::size_t i = 0; i < copies_.size(); ++i) copies_[i].merge(other.copies_[i]);
}

void RangeF0Estimator::merge(const RangeF0Estimator& other, ThreadPool& pool) {
  USTREAM_REQUIRE(copies_.size() == other.copies_.size(),
                  "merge requires estimators with identical parameters");
  pool.parallel_for(copies_.size(),
                    [&](std::size_t i) { copies_[i].merge(other.copies_[i]); });
}

std::size_t RangeF0Estimator::bytes_used() const noexcept {
  std::size_t b = sizeof(*this);
  for (const auto& c : copies_) b += c.bytes_used();
  return b;
}

}  // namespace ustream
