// Set-expression estimation from coordinated samples.
//
// Because every party flips the SAME per-label coins (shared hash), the
// samples held by two samplers are comparable at a common level: a label of
// level >= L that occurred in stream A is in A's sample whenever A's
// threshold is <= L, and likewise for B. So at L = max(level_A, level_B):
//
//   |A ∪ B|  ~  2^L * |S_A^L ∪ S_B^L|        (same as merge-then-estimate)
//   |A ∩ B|  ~  2^L * |S_A^L ∩ S_B^L|
//   |A \ B|  ~  2^L * |S_A^L \ S_B^L|
//   Jaccard  ~  |S_A^L ∩ S_B^L| / |S_A^L ∪ S_B^L|
//
// where S_X^L is X's sample restricted to level >= L. This is precisely the
// trick modern theta/KMV sketches inherit from coordinated sampling.
// Relative-error guarantees for intersection/difference degrade with the
// ratio |A ∪ B| / |expression| (small intersections need more capacity) —
// E-series benchmarks quantify this.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/dense_map.h"
#include "common/error.h"
#include "common/stats.h"
#include "core/coordinated_sampler.h"
#include "core/f0_estimator.h"

namespace ustream {

// Counts of the restricted-sample Venn regions of two coordinated samplers.
struct SetCounts {
  int level = 0;            // common level L
  std::size_t only_a = 0;   // |S_A^L \ S_B^L|
  std::size_t only_b = 0;   // |S_B^L \ S_A^L|
  std::size_t both = 0;     // |S_A^L ∩ S_B^L|

  double scale() const noexcept { return std::ldexp(1.0, level); }
  double union_estimate() const noexcept {
    return static_cast<double>(only_a + only_b + both) * scale();
  }
  double intersection_estimate() const noexcept {
    return static_cast<double>(both) * scale();
  }
  double difference_estimate() const noexcept {  // |A \ B|
    return static_cast<double>(only_a) * scale();
  }
  double jaccard_estimate() const noexcept {
    const std::size_t u = only_a + only_b + both;
    return u == 0 ? 0.0 : static_cast<double>(both) / static_cast<double>(u);
  }
};

template <typename Hash, typename V>
SetCounts coordinated_set_counts(const CoordinatedSampler<Hash, V>& a,
                                 const CoordinatedSampler<Hash, V>& b) {
  USTREAM_REQUIRE(a.seed() == b.seed(),
                  "set expressions need coordinated (same-seed) samplers");
  SetCounts out;
  out.level = std::max(a.level(), b.level());
  DenseSet in_b(b.size());
  for (const auto& e : b.entries()) {
    if (e.value.level >= out.level) in_b.insert(e.key);
  }
  std::size_t a_count = 0;
  for (const auto& e : a.entries()) {
    if (e.value.level < out.level) continue;
    ++a_count;
    if (in_b.contains(e.key)) ++out.both;
  }
  out.only_a = a_count - out.both;
  out.only_b = in_b.size() - out.both;
  return out;
}

// Median-boosted set expressions over two F0 estimators built with the SAME
// EstimatorParams (same root seed => copy i of A is coordinated with copy i
// of B).
template <typename Hash>
struct SetExpressionEstimate {
  double union_size;
  double intersection_size;
  double difference_a_minus_b;
  double jaccard;
};

template <typename Hash>
SetExpressionEstimate<Hash> estimate_set_expressions(const BasicF0Estimator<Hash>& a,
                                                     const BasicF0Estimator<Hash>& b) {
  USTREAM_REQUIRE(a.num_copies() == b.num_copies() && a.can_merge_with(b),
                  "set expressions need estimators with identical parameters");
  std::vector<double> uni, inter, diff, jac;
  const std::size_t r = a.num_copies();
  uni.reserve(r), inter.reserve(r), diff.reserve(r), jac.reserve(r);
  for (std::size_t i = 0; i < r; ++i) {
    const SetCounts c = coordinated_set_counts(a.copy(i), b.copy(i));
    uni.push_back(c.union_estimate());
    inter.push_back(c.intersection_estimate());
    diff.push_back(c.difference_estimate());
    jac.push_back(c.jaccard_estimate());
  }
  return {median_of(std::move(uni)), median_of(std::move(inter)), median_of(std::move(diff)),
          median_of(std::move(jac))};
}

}  // namespace ustream
