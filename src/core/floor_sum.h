// floor_sum and progression threshold counting.
//
// floor_sum(n, m, a, b) = Sum_{i=0}^{n-1} floor((a*i + b) / m), computed in
// O(log) time by the Euclid-like recurrence. This is the counting oracle
// behind range-efficient coordinated sampling (after Pavan & Tirthapura):
// it answers "how many labels in an interval survive the current sampling
// threshold" without touching the labels individually, because the survival
// test ( (a*x + b) mod p < t ) counts via two floor_sums.
#pragma once

#include <cstdint>
#include <utility>

#include "common/error.h"

namespace ustream {

// Sum_{i=0}^{n-1} floor((a*i + b) / m). Requires m > 0.
// All intermediates fit in unsigned __int128 for the library's use
// (m = 2^61 - 1, a,b < m, n <= 2^61).
constexpr unsigned __int128 floor_sum(std::uint64_t n, std::uint64_t m, std::uint64_t a,
                                      std::uint64_t b) {
  USTREAM_REQUIRE(m > 0, "floor_sum modulus must be positive");
  unsigned __int128 ans = 0;
  while (true) {
    if (a >= m) {
      // Triangular contribution of the quotient part of a.
      ans += (static_cast<unsigned __int128>(n) * (n - 1) / 2) * (a / m);
      a %= m;
    }
    if (b >= m) {
      ans += static_cast<unsigned __int128>(n) * (b / m);
      b %= m;
    }
    const unsigned __int128 y_max = static_cast<unsigned __int128>(a) * n + b;
    if (y_max < m) break;
    // Swap roles (Stern-Brocot style descent).
    n = static_cast<std::uint64_t>(y_max / m);
    b = static_cast<std::uint64_t>(y_max % m);
    std::swap(m, a);
  }
  return ans;
}

// |{ i in [0, n) : (a*i + b) mod p < t }| for t <= p, a,b < p.
// Identity: [v mod p >= t] = floor((v + p - t)/p) - floor(v/p) for v >= 0,
// so the count below t is n minus the difference of two floor_sums.
constexpr std::uint64_t count_below_threshold(std::uint64_t n, std::uint64_t p, std::uint64_t a,
                                              std::uint64_t b, std::uint64_t t) {
  USTREAM_REQUIRE(t <= p, "threshold exceeds modulus");
  if (n == 0 || t == 0) return 0;
  if (t == p) return n;
  const unsigned __int128 ge = floor_sum(n, p, a, b + (p - t)) - floor_sum(n, p, a, b);
  return n - static_cast<std::uint64_t>(ge);
}

}  // namespace ustream
